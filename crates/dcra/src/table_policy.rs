//! The table-driven DCRA implementation (paper Section 3.4, second
//! option): instead of a combinational circuit evaluating the sharing
//! formula every cycle, a direct-mapped read-only table indexed by the
//! number of slow-active and fast-active threads supplies the allocation.
//!
//! The paper highlights this variant because it makes the sharing model
//! *reprogrammable*: "changing the sharing model would be as easy as
//! loading new values in this table. This is convenient, for example, when
//! the memory latency changes." [`TableDcra::load`] is exactly that
//! operation.

use crate::classify::{ActivityTracker, ThreadPhase};
use crate::policy::DcraConfig;
use crate::sharing::{slow_share, SharingFactor};
use smt_isa::{PerResource, QueueKind, RegClass, ResourceKind, ThreadId};
use smt_policy_core::{CycleView, Policy};

/// A pre-computed allocation table for one resource: `E_slow` indexed by
/// `(FA, SA)` with `SA ≥ 1` and `FA + SA ≤ threads`.
///
/// # Examples
///
/// ```
/// use dcra::{AllocationRom, SharingFactor};
///
/// let rom = AllocationRom::precompute(32, 4, SharingFactor::Inverse);
/// // Paper Table 1, entry 7: three fast-active, one slow-active.
/// assert_eq!(rom.lookup(3, 1), Some(14));
/// assert_eq!(rom.lookup(0, 0), None, "no slow threads: no limit");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationRom {
    threads: u32,
    /// Dense `(fa, sa)` table; index = fa * (threads + 1) + sa.
    entries: Vec<Option<u32>>,
}

impl AllocationRom {
    /// Pre-computes the ROM for a resource with `total` entries on a
    /// `threads`-context machine under the given sharing factor — the
    /// "loading new values" step of the paper.
    pub fn precompute(total: u32, threads: u32, factor: SharingFactor) -> Self {
        let stride = threads + 1;
        let mut entries = vec![None; (stride * stride) as usize];
        for fa in 0..=threads {
            for sa in 1..=threads {
                if fa + sa > threads {
                    continue;
                }
                entries[(fa * stride + sa) as usize] = Some(slow_share(total, fa, sa, factor));
            }
        }
        AllocationRom { threads, entries }
    }

    /// Looks up the slow-thread entitlement for the given active counts.
    /// Returns `None` when the combination carries no limit (no slow
    /// threads, or counts outside the machine's range).
    pub fn lookup(&self, fast_active: u32, slow_active: u32) -> Option<u32> {
        if slow_active == 0 || fast_active + slow_active > self.threads {
            return None;
        }
        let stride = self.threads + 1;
        self.entries
            .get((fast_active * stride + slow_active) as usize)
            .copied()
            .flatten()
    }

    /// Number of populated rows (the paper quotes 10 for a 4-context
    /// machine).
    pub fn populated_rows(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// DCRA with table-driven allocation lookup — semantically identical to
/// [`crate::Dcra`] (the combinational version) as long as the loaded ROMs
/// were computed with the same sharing factors; the equivalence is covered
/// by tests.
#[derive(Debug, Clone)]
pub struct TableDcra {
    config: DcraConfig,
    activity: Option<ActivityTracker>,
    /// One ROM per controlled resource; `None` until the machine shape is
    /// known (first cycle).
    roms: Option<PerResource<AllocationRom>>,
    limits: PerResource<Option<u32>>,
    gated: Vec<bool>,
    phases: Vec<ThreadPhase>,
}

impl Default for TableDcra {
    fn default() -> Self {
        TableDcra::new(DcraConfig::default())
    }
}

impl TableDcra {
    /// Creates the policy; ROMs are computed lazily on the first cycle
    /// from the machine's resource totals and thread count.
    pub fn new(config: DcraConfig) -> Self {
        TableDcra {
            config,
            activity: None,
            roms: None,
            limits: PerResource::default(),
            gated: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Replaces every ROM — the paper's "loading new values in this
    /// table" reconfiguration (e.g. after a memory-latency change).
    pub fn load(&mut self, roms: PerResource<AllocationRom>) {
        self.roms = Some(roms);
    }

    /// The ROM set currently loaded, if any.
    pub fn roms(&self) -> Option<&PerResource<AllocationRom>> {
        self.roms.as_ref()
    }

    /// Per-resource limits computed in the last cycle.
    pub fn current_limits(&self) -> &PerResource<Option<u32>> {
        &self.limits
    }

    fn ensure_roms(&mut self, view: &CycleView) {
        if self.roms.is_some() {
            return;
        }
        let threads = view.thread_count() as u32;
        let mut roms: Vec<AllocationRom> = Vec::with_capacity(ResourceKind::COUNT);
        for kind in ResourceKind::ALL {
            let factor = if kind.is_queue() {
                self.config.sharing.queue_factor
            } else {
                self.config.sharing.reg_factor
            };
            roms.push(AllocationRom::precompute(
                view.totals[kind],
                threads,
                factor,
            ));
        }
        self.roms = Some(PerResource(
            roms.try_into().expect("exactly COUNT roms built"),
        ));
    }
}

impl Policy for TableDcra {
    fn name(&self) -> &str {
        "DCRA"
    }

    fn begin_cycle(&mut self, view: &CycleView) {
        let n = view.thread_count();
        self.ensure_roms(view);
        let init = self.config.activity_init;
        self.activity
            .get_or_insert_with(|| ActivityTracker::new(n, init))
            .tick();

        self.phases.clear();
        self.phases.extend(
            view.l1d_pendings()
                .iter()
                .map(|&c| ThreadPhase::from_pending_misses(c)),
        );
        self.gated.clear();
        self.gated.resize(n, false);

        let activity = self.activity.as_ref().expect("initialised above");
        let roms = self.roms.as_ref().expect("initialised above");
        let usages = view.usages();
        for kind in ResourceKind::ALL {
            let mut fa = 0u32;
            let mut sa = 0u32;
            for i in 0..n {
                if !activity.is_active(ThreadId::new(i), kind) {
                    continue;
                }
                match self.phases[i] {
                    ThreadPhase::Fast => fa += 1,
                    ThreadPhase::Slow => sa += 1,
                }
            }
            let e_slow = roms[kind].lookup(fa, sa);
            self.limits[kind] = e_slow;
            let Some(e_slow) = e_slow else { continue };
            for (i, usage) in usages.iter().enumerate().take(n) {
                if self.phases[i] == ThreadPhase::Slow
                    && activity.is_active(ThreadId::new(i), kind)
                    && usage[kind] >= e_slow
                {
                    self.gated[i] = true;
                }
            }
        }
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        // ICOUNT fetch priority (gating is separate, via `fetch_gate`).
        smt_policies::icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, _view: &CycleView) -> bool {
        !self.gated.get(t.index()).copied().unwrap_or(false)
    }

    fn on_dispatch(&mut self, t: ThreadId, queue: QueueKind, dest: Option<RegClass>) {
        let activity = self
            .activity
            .as_mut()
            .expect("on_dispatch before begin_cycle");
        activity.on_alloc(t, queue.resource());
        if let Some(d) = dest {
            activity.on_alloc(t, d.resource());
        }
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // Identical reasoning to `Dcra::on_idle_cycles`: decay is the only
        // per-cycle state, and `idle_replay` stops just short of the first
        // activity flip so the gated set stays frozen across the span.
        match self.activity.as_mut() {
            Some(activity) => activity.idle_replay(n),
            None => 0,
        }
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dcra;
    use smt_policy_core::ThreadView;

    #[test]
    fn rom_matches_paper_table1() {
        let rom = AllocationRom::precompute(32, 4, SharingFactor::Inverse);
        assert_eq!(rom.populated_rows(), 10);
        for (fa, sa, expect) in [
            (0u32, 1u32, 32u32),
            (1, 1, 24),
            (3, 1, 14),
            (2, 2, 12),
            (0, 4, 8),
        ] {
            assert_eq!(rom.lookup(fa, sa), Some(expect), "FA={fa} SA={sa}");
        }
    }

    #[test]
    fn rom_rejects_out_of_range() {
        let rom = AllocationRom::precompute(32, 4, SharingFactor::Inverse);
        assert_eq!(rom.lookup(4, 1), None, "five active on a 4-way machine");
        assert_eq!(rom.lookup(2, 0), None, "no slow threads");
    }

    fn view(specs: &[(u32, u32)]) -> CycleView {
        let threads: Vec<ThreadView> = specs
            .iter()
            .map(|&(ic, l1p)| ThreadView {
                icount: ic,
                l1d_pending: l1p,
                ..ThreadView::default()
            })
            .collect();
        CycleView::new(0, PerResource::filled(32), &threads)
    }

    /// The table-driven and combinational implementations must compute the
    /// same limits and the same gates for identical inputs.
    #[test]
    fn equivalent_to_combinational_dcra() {
        let cfg = DcraConfig::default();
        let mut table = TableDcra::new(cfg);
        let mut comb = Dcra::new(cfg);
        // Sweep every slow/fast combination of a 4-thread machine with
        // varying usage.
        for mask in 0u32..16 {
            for usage in [0u32, 5, 9, 32] {
                let specs = [
                    (3, mask & 1),
                    (7, (mask >> 1) & 1),
                    (11, (mask >> 2) & 1),
                    (2, (mask >> 3) & 1),
                ];
                let mut v = view(&specs);
                for (i, &(ic, l1p)) in specs.iter().enumerate() {
                    v.set_thread(
                        i,
                        &ThreadView {
                            icount: ic,
                            l1d_pending: l1p,
                            usage: PerResource::filled(usage),
                            ..ThreadView::default()
                        },
                    );
                }
                table.begin_cycle(&v);
                comb.begin_cycle(&v);
                assert_eq!(
                    table.current_limits(),
                    comb.current_limits(),
                    "limits diverge for mask={mask} usage={usage}"
                );
                for i in 0..4 {
                    let t = ThreadId::new(i);
                    assert_eq!(
                        table.fetch_gate(t, &v),
                        comb.fetch_gate(t, &v),
                        "gate diverges for thread {i}, mask={mask}, usage={usage}"
                    );
                }
            }
        }
    }

    #[test]
    fn load_replaces_the_model() {
        let mut p = TableDcra::default();
        let v = view(&[(0, 1), (0, 0)]);
        p.begin_cycle(&v); // builds default ROMs (1/(A+4) at 300 cycles)
        let default_limit = p.current_limits()[ResourceKind::IntQueue];

        // Reload with C = 0 tables: the slow share must shrink to the even
        // split.
        let roms: Vec<AllocationRom> = ResourceKind::ALL
            .iter()
            .map(|_| AllocationRom::precompute(32, 2, SharingFactor::Zero))
            .collect();
        p.load(PerResource(roms.try_into().expect("five roms")));
        p.begin_cycle(&v);
        let zero_limit = p.current_limits()[ResourceKind::IntQueue];
        assert_eq!(zero_limit, Some(16));
        assert!(zero_limit < default_limit, "reload must change the model");
    }
}
