//! Property-based tests of the DCRA sharing model's invariants.

use dcra::{allocation_table, slow_share, SharingFactor};
use proptest::prelude::*;

fn factors() -> impl Strategy<Value = SharingFactor> {
    prop_oneof![
        Just(SharingFactor::Inverse),
        Just(SharingFactor::InversePlus4),
        Just(SharingFactor::Zero),
    ]
}

proptest! {
    /// The slow share never exceeds the resource total and never drops
    /// below the even share of the active threads (slow threads *borrow*,
    /// they never lend).
    #[test]
    fn slow_share_is_bounded(
        total in 1u32..1024,
        fa in 0u32..8,
        sa in 1u32..8,
        factor in factors(),
    ) {
        let share = slow_share(total, fa, sa, factor);
        prop_assert!(share <= total);
        let even = total / (fa + sa);
        prop_assert!(
            share + 1 >= even,
            "share {share} below even split {even} (total={total}, FA={fa}, SA={sa})"
        );
    }

    /// With no fast threads the slow threads split the resource evenly
    /// (nobody can lend anything).
    #[test]
    fn no_fast_threads_means_even_split(total in 1u32..1024, sa in 1u32..8, factor in factors()) {
        let share = slow_share(total, 0, sa, factor);
        let even = (f64::from(total) / f64::from(sa)).round() as u32;
        prop_assert_eq!(share, even);
    }

    /// The total claimable by all slow threads plus one entry per fast
    /// thread never collapses to zero: fast threads always retain at least
    /// the leftovers, and E_slow·SA cannot exceed the total by more than
    /// rounding (paper's model leaves fast threads R − SA·E_slow).
    #[test]
    fn slow_claims_leave_room(total in 8u32..1024, fa in 1u32..5, sa in 1u32..5, factor in factors()) {
        let share = slow_share(total, fa, sa, factor);
        // rounding may slightly exceed the exact model; allow SA slack
        prop_assert!(share * sa <= total + sa, "slow threads claim {} of {total}", share * sa);
    }

    /// More fast active threads never *reduce* a slow thread's entitlement
    /// for `C = 1/A` at fixed total and SA... not monotone in general, but
    /// the entitlement always stays >= the even split of the same
    /// configuration — the property the paper's Table 1 illustrates.
    #[test]
    fn entitlement_at_least_even_share(total in 8u32..512, fa in 0u32..6, sa in 1u32..6) {
        let share = slow_share(total, fa, sa, SharingFactor::Inverse);
        let even = f64::from(total) / f64::from(fa + sa);
        prop_assert!(f64::from(share) + 1.0 >= even);
    }

    /// The allocation table enumerates exactly the (FA, SA) pairs with
    /// SA >= 1 and FA + SA <= T, each exactly once.
    #[test]
    fn allocation_table_is_complete(total in 8u32..256, threads in 1u32..6, factor in factors()) {
        let table = allocation_table(total, threads, factor);
        let expected: usize = (1..=threads).map(|a| a as usize).sum();
        prop_assert_eq!(table.len(), expected);
        let mut seen = std::collections::HashSet::new();
        for row in &table {
            prop_assert!(row.slow_active >= 1);
            prop_assert!(row.fast_active + row.slow_active <= threads);
            prop_assert!(seen.insert((row.fast_active, row.slow_active)));
            prop_assert_eq!(
                row.e_slow,
                slow_share(total, row.fast_active, row.slow_active, factor)
            );
        }
    }
}
