//! Integration tests of DCRA driving a real simulation.

use dcra::{Dcra, DcraConfig, SharingConfig, SharingFactor};
use smt_isa::{ResourceKind, ThreadId};
use smt_sim::{SimConfig, Simulator};
use smt_workloads::spec;

fn sim_with(benches: &[&str], config: DcraConfig, seed: u64) -> Simulator {
    let profiles: Vec<_> = benches
        .iter()
        .map(|b| spec::profile(b).expect("registry benchmark"))
        .collect();
    let mut sim = Simulator::new(
        SimConfig::baseline(benches.len()),
        &profiles,
        Dcra::new(config),
        seed,
    );
    sim.prewarm(150_000);
    sim.run_cycles(10_000);
    sim.reset_stats();
    sim
}

#[test]
fn dcra_gates_slow_threads_on_real_runs() {
    let mut sim = sim_with(&["art", "gzip"], DcraConfig::default(), 42);
    sim.run_cycles(80_000);
    let r = sim.result();
    assert!(
        r.threads[0].gated_cycles > 0,
        "the memory-bound thread must hit its allocation at least sometimes"
    );
    assert!(
        r.threads[0].gated_cycles > r.threads[1].gated_cycles,
        "art (slow) should be gated more than gzip (fast): {} vs {}",
        r.threads[0].gated_cycles,
        r.threads[1].gated_cycles
    );
}

#[test]
fn zero_sharing_keeps_average_usage_near_even_split() {
    // DCRA only restricts threads *while they are slow* (the paper's
    // enforcement, Section 3.4), so instantaneous usage can overshoot
    // during fast windows. With C = 0 the long-run average occupancy of a
    // memory-bound thread must nevertheless sit near (or below) the even
    // split, and the gate must engage and release rather than latch.
    let cfg = DcraConfig {
        sharing: SharingConfig {
            queue_factor: SharingFactor::Zero,
            reg_factor: SharingFactor::Zero,
        },
        ..DcraConfig::default()
    };
    let mut sim = sim_with(&["art", "swim"], cfg, 3);
    let cycles = 40_000u64;
    let mut lsq_sum = [0u64; 2];
    for _ in 0..cycles {
        sim.step();
        for (t, sum) in lsq_sum.iter_mut().enumerate() {
            *sum += u64::from(sim.thread_usage(ThreadId::new(t))[ResourceKind::LsQueue]);
        }
    }
    let r = sim.result();
    for (t, sum) in lsq_sum.iter().enumerate() {
        let avg = *sum as f64 / cycles as f64;
        assert!(
            avg <= 44.0,
            "thread {t} average LSQ occupancy {avg:.1} far above the even split (40)"
        );
        assert!(r.threads[t].gated_cycles > 0, "gate never engaged for {t}");
        assert!(
            r.threads[t].committed > 1_000,
            "gate must release: thread {t} committed only {}",
            r.threads[t].committed
        );
    }
}

#[test]
fn dcra_preserves_throughput_on_pure_ilp() {
    // With no slow threads there is nothing to gate: DCRA must match
    // an ungated baseline closely.
    let mut dcra_sim = sim_with(&["gzip", "bzip2"], DcraConfig::default(), 9);
    dcra_sim.run_cycles(60_000);
    let dcra = dcra_sim.result().throughput();

    let profiles = [
        spec::profile("gzip").unwrap(),
        spec::profile("bzip2").unwrap(),
    ];
    let mut base = Simulator::new(SimConfig::baseline(2), &profiles, smt_policies::Icount, 9);
    base.prewarm(150_000);
    base.run_cycles(10_000);
    base.reset_stats();
    base.run_cycles(60_000);
    let icount = base.result().throughput();

    assert!(
        (dcra - icount).abs() / icount < 0.05,
        "DCRA {dcra:.2} should track ICOUNT {icount:.2} on pure ILP"
    );
}

#[test]
fn activity_donation_helps_fp_slow_threads() {
    // An FP memory-bound thread paired with an integer thread: the integer
    // thread is inactive for FP resources, so the FP thread's entitlement
    // for the FP queue must reach the full queue.
    let profiles = [
        spec::profile("swim").unwrap(),
        spec::profile("gzip").unwrap(),
    ];
    let mut policy = Dcra::default();
    let mut sim = Simulator::new(SimConfig::baseline(2), &profiles, policy.clone(), 5);
    sim.prewarm(100_000);
    sim.run_cycles(40_000);
    // Reconstruct the classification offline: gzip emits no FP work, so
    // after 256 cycles it must be inactive for FP resources.
    let view = smt_sim::policy::CycleView::new(
        0,
        smt_isa::PerResource::filled(80),
        &[
            smt_sim::policy::ThreadView {
                l1d_pending: 1, // swim slow
                ..Default::default()
            },
            smt_sim::policy::ThreadView::default(), // gzip fast
        ],
    );
    use smt_sim::policy::Policy as _;
    for _ in 0..300 {
        policy.begin_cycle(&view);
        // Only swim allocates FP resources.
        policy.on_dispatch(
            ThreadId::new(0),
            smt_isa::QueueKind::Fp,
            Some(smt_isa::RegClass::Fp),
        );
    }
    assert_eq!(
        policy.current_limits()[ResourceKind::FpQueue],
        Some(80),
        "sole FP-active slow thread should be entitled to the whole FP queue"
    );
}

#[test]
fn table_driven_implementation_matches_combinational_end_to_end() {
    // The paper offers two implementations of the sharing model (§3.4): a
    // combinational circuit and a read-only table. On identical runs they
    // must produce cycle-identical machines.
    let profiles = [
        spec::profile("art").unwrap(),
        spec::profile("gzip").unwrap(),
    ];
    let run = |policy: Box<dyn smt_sim::policy::Policy>| {
        let mut sim = Simulator::new(SimConfig::baseline(2), &profiles, policy, 42);
        sim.prewarm(100_000);
        sim.run_cycles(60_000);
        sim.result()
    };
    let comb = run(Box::<Dcra>::default());
    let table = run(Box::<dcra::TableDcra>::default());
    assert_eq!(
        comb, table,
        "ROM-based DCRA diverged from the combinational one"
    );
}

#[test]
fn degenerate_detection_reclaims_resources_from_mcf() {
    // DCRA-DC (the paper's future work): when mcf is detected as
    // degenerate, the co-running fast thread should do at least as well as
    // under plain DCRA.
    let profiles = [
        spec::profile("mcf").unwrap(),
        spec::profile("gzip").unwrap(),
    ];
    let run = |policy: Box<dyn smt_sim::policy::Policy>| {
        let mut sim = Simulator::new(SimConfig::baseline(2), &profiles, policy, 11);
        sim.prewarm(200_000);
        sim.run_cycles(20_000);
        sim.reset_stats();
        sim.run_cycles(120_000);
        sim.result()
    };
    let plain = run(Box::<Dcra>::default());
    let dc = run(Box::<dcra::DcraDc>::default());
    let gzip_plain = plain.threads[1].ipc(plain.cycles);
    let gzip_dc = dc.threads[1].ipc(dc.cycles);
    assert!(
        gzip_dc >= gzip_plain * 0.95,
        "degenerate detection must not hurt the fast thread: {gzip_dc:.2} vs {gzip_plain:.2}"
    );
}
