//! Property-based tests of the instruction/resource vocabulary.

use proptest::prelude::*;
use smt_isa::{
    BranchKind, DecodedInst, InstClass, PackedInst, PerResource, QueueKind, RegClass, ResourceKind,
    ThreadId,
};

fn any_class() -> impl Strategy<Value = InstClass> {
    (0..InstClass::ALL.len()).prop_map(|i| InstClass::ALL[i])
}

fn any_kind() -> impl Strategy<Value = BranchKind> {
    (0..4u8).prop_map(|i| {
        [
            BranchKind::Conditional,
            BranchKind::Jump,
            BranchKind::Call,
            BranchKind::Return,
        ][usize::from(i)]
    })
}

/// Any builder-constructible decoded record: payloads are attached exactly
/// where the builder's class invariants require them (mem on loads/stores,
/// branch info on branches).
fn any_decoded() -> impl Strategy<Value = DecodedInst> {
    (
        (
            any_class(),
            1u64..u64::MAX / 2,
            0usize..3,
            proptest::collection::vec(1u32..512, 0..3),
        ),
        (
            (0u64..u64::MAX / 2, 1u8..9),
            (any_kind(), any::<bool>(), 0u64..u64::MAX / 2),
        ),
    )
        .prop_map(
            |((class, pc, dest, deps), ((addr, size), (kind, taken, target)))| {
                let mut b = DecodedInst::builder(class, pc);
                if dest > 0 {
                    b = b.dest(RegClass::ALL[dest - 1]);
                }
                for d in deps {
                    b = b.dep(d);
                }
                if class.is_mem() {
                    b = b.mem(addr, size);
                }
                if class == InstClass::Branch {
                    b = b.branch(kind, taken, target);
                }
                b.build()
            },
        )
}

proptest! {
    /// Queue and resource mappings are total and consistent: every class
    /// maps to a queue whose resource is a queue resource.
    #[test]
    fn class_queue_resource_consistency(class in any_class()) {
        let q = class.queue();
        let r = q.resource();
        prop_assert!(r.is_queue());
        // FP classes go to the FP queue, memory classes to the LSQ.
        if class.is_fp() {
            prop_assert_eq!(q, QueueKind::Fp);
        }
        if class.is_mem() {
            prop_assert_eq!(q, QueueKind::LoadStore);
        }
    }

    /// Builder round trip: deps come back in insertion order, extra deps
    /// overwrite the second slot only.
    #[test]
    fn builder_dep_semantics(d1 in 1u32..512, d2 in 1u32..512, d3 in 1u32..512) {
        let i = DecodedInst::builder(InstClass::IntAlu, 0)
            .dest(RegClass::Int)
            .dep(d1)
            .dep(d2)
            .dep(d3)
            .build();
        prop_assert_eq!(i.deps()[0], Some(d1));
        prop_assert_eq!(i.deps()[1], Some(d3), "third dep overwrites slot 2");
    }

    /// PerResource is a faithful dense map over ResourceKind.
    #[test]
    fn per_resource_is_a_dense_map(vals in proptest::collection::vec(0u32..1000, 5)) {
        let mut t = PerResource::<u32>::default();
        for (kind, v) in ResourceKind::ALL.iter().zip(&vals) {
            t[*kind] = *v;
        }
        for (kind, v) in ResourceKind::ALL.iter().zip(&vals) {
            prop_assert_eq!(t[*kind], *v);
        }
        let collected: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        prop_assert_eq!(collected, vals);
    }

    /// ThreadId round trips through its index for the supported range.
    #[test]
    fn thread_id_round_trip(i in 0usize..ThreadId::MAX_THREADS) {
        prop_assert_eq!(ThreadId::new(i).index(), i);
    }

    /// Packed records are a lossless re-encoding of every
    /// builder-constructible decoded record: `pack` then `unpack` (with
    /// the sidecar payloads handed back) reproduces the input exactly,
    /// and every packed accessor agrees with the decoded field it mirrors.
    #[test]
    fn packed_round_trips_builder_records(d in any_decoded(), aux in 0u16..u16::MAX) {
        let p = PackedInst::pack(&d, aux);
        prop_assert_eq!(p.unpack(d.mem, d.branch), d.clone());
        prop_assert_eq!(p.pc, d.pc);
        prop_assert_eq!(p.class(), d.class);
        prop_assert_eq!(p.dest(), d.dest);
        prop_assert_eq!(p.aux(), aux);
        prop_assert_eq!(p.has_mem(), d.mem.is_some());
        prop_assert_eq!(p.has_branch(), d.branch.is_some());
        prop_assert_eq!(p.branch_kind(), d.branch.map(|b| b.kind));
        prop_assert_eq!(p.is_cond_branch(), d.is_cond_branch());
        if let Some(b) = d.branch {
            prop_assert_eq!(p.taken(), b.taken);
        }
        let dists = p.dep_dists();
        for (slot, dep) in d.deps().iter().enumerate() {
            prop_assert_eq!(u32::from(dists[slot]), dep.unwrap_or(0));
        }
    }

    /// Branch info round trips through the builder.
    #[test]
    fn branch_info_round_trip(taken: bool, target in 0u64..u64::MAX / 2) {
        let i = DecodedInst::builder(InstClass::Branch, 0x40)
            .branch(BranchKind::Conditional, taken, target)
            .build();
        let b = i.branch.expect("builder attached branch info");
        prop_assert_eq!(b.taken, taken);
        prop_assert_eq!(b.target, target);
        prop_assert_eq!(i.is_cond_branch(), true);
    }
}
