//! Property-based tests of the instruction/resource vocabulary.

use proptest::prelude::*;
use smt_isa::{
    BranchKind, DecodedInst, InstClass, PerResource, QueueKind, RegClass, ResourceKind, ThreadId,
};

fn any_class() -> impl Strategy<Value = InstClass> {
    (0..InstClass::ALL.len()).prop_map(|i| InstClass::ALL[i])
}

proptest! {
    /// Queue and resource mappings are total and consistent: every class
    /// maps to a queue whose resource is a queue resource.
    #[test]
    fn class_queue_resource_consistency(class in any_class()) {
        let q = class.queue();
        let r = q.resource();
        prop_assert!(r.is_queue());
        // FP classes go to the FP queue, memory classes to the LSQ.
        if class.is_fp() {
            prop_assert_eq!(q, QueueKind::Fp);
        }
        if class.is_mem() {
            prop_assert_eq!(q, QueueKind::LoadStore);
        }
    }

    /// Builder round trip: deps come back in insertion order, extra deps
    /// overwrite the second slot only.
    #[test]
    fn builder_dep_semantics(d1 in 1u32..512, d2 in 1u32..512, d3 in 1u32..512) {
        let i = DecodedInst::builder(InstClass::IntAlu, 0)
            .dest(RegClass::Int)
            .dep(d1)
            .dep(d2)
            .dep(d3)
            .build();
        prop_assert_eq!(i.deps()[0], Some(d1));
        prop_assert_eq!(i.deps()[1], Some(d3), "third dep overwrites slot 2");
    }

    /// PerResource is a faithful dense map over ResourceKind.
    #[test]
    fn per_resource_is_a_dense_map(vals in proptest::collection::vec(0u32..1000, 5)) {
        let mut t = PerResource::<u32>::default();
        for (kind, v) in ResourceKind::ALL.iter().zip(&vals) {
            t[*kind] = *v;
        }
        for (kind, v) in ResourceKind::ALL.iter().zip(&vals) {
            prop_assert_eq!(t[*kind], *v);
        }
        let collected: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        prop_assert_eq!(collected, vals);
    }

    /// ThreadId round trips through its index for the supported range.
    #[test]
    fn thread_id_round_trip(i in 0usize..ThreadId::MAX_THREADS) {
        prop_assert_eq!(ThreadId::new(i).index(), i);
    }

    /// Branch info round trips through the builder.
    #[test]
    fn branch_info_round_trip(taken: bool, target in 0u64..u64::MAX / 2) {
        let i = DecodedInst::builder(InstClass::Branch, 0x40)
            .branch(BranchKind::Conditional, taken, target)
            .build();
        let b = i.branch.expect("builder attached branch info");
        prop_assert_eq!(b.taken, taken);
        prop_assert_eq!(b.target, target);
        prop_assert_eq!(i.is_cond_branch(), true);
    }
}
