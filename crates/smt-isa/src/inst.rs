//! Decoded-instruction records produced by the trace generators.

use crate::{QueueKind, RegClass};
use serde::{Deserialize, Serialize};

/// Functional class of an instruction.
///
/// The class determines the issue queue the instruction occupies, the
/// functional unit type it executes on and its execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Simple integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply/divide-style long-latency operation.
    IntMul,
    /// Floating-point add/compare (pipelined).
    FpAlu,
    /// Floating-point multiply (pipelined).
    FpMul,
    /// Long-latency floating-point operation (divide/sqrt).
    FpDiv,
    /// Memory load; latency is determined by the cache hierarchy.
    Load,
    /// Memory store; address generation in the pipeline, data written at
    /// commit.
    Store,
    /// Control-flow instruction (conditional branch, call, return, jump).
    Branch,
}

impl InstClass {
    /// All instruction classes in a fixed order.
    pub const ALL: [InstClass; 8] = [
        InstClass::IntAlu,
        InstClass::IntMul,
        InstClass::FpAlu,
        InstClass::FpMul,
        InstClass::FpDiv,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
    ];

    /// The issue queue this class dispatches into.
    ///
    /// Integer operations and branches share the integer queue; FP operations
    /// use the FP queue; memory operations use the load/store queue. This
    /// mirrors the three 80-entry queues of the paper's baseline.
    #[inline]
    pub fn queue(self) -> QueueKind {
        match self {
            InstClass::IntAlu | InstClass::IntMul | InstClass::Branch => QueueKind::Int,
            InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv => QueueKind::Fp,
            InstClass::Load | InstClass::Store => QueueKind::LoadStore,
        }
    }

    /// Fixed execution latency in cycles for non-memory classes.
    ///
    /// Loads return their address-generation latency here; the cache
    /// hierarchy adds the access latency when the load issues.
    #[inline]
    pub fn exec_latency(self) -> u32 {
        match self {
            InstClass::IntAlu | InstClass::Branch | InstClass::Store => 1,
            InstClass::IntMul => 3,
            InstClass::FpAlu => 2,
            InstClass::FpMul => 4,
            InstClass::FpDiv => 12,
            InstClass::Load => 1,
        }
    }

    /// `true` for memory-accessing classes.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }

    /// `true` for floating-point classes.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv)
    }
}

impl std::fmt::Display for InstClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InstClass::IntAlu => "int-alu",
            InstClass::IntMul => "int-mul",
            InstClass::FpAlu => "fp-alu",
            InstClass::FpMul => "fp-mul",
            InstClass::FpDiv => "fp-div",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Kind of control-flow transfer, used by the branch-prediction substrate to
/// choose between the direction predictor, the BTB and the RAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch; direction predicted by gshare.
    Conditional,
    /// Unconditional direct jump; always taken, target from BTB.
    Jump,
    /// Function call; pushes the return address on the RAS.
    Call,
    /// Function return; target predicted by the RAS.
    Return,
}

/// Control-flow information attached to a [`DecodedInst`] of class
/// [`InstClass::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Kind of transfer.
    pub kind: BranchKind,
    /// Actual direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Actual target address when taken.
    pub target: u64,
}

/// Memory access information attached to a [`DecodedInst`] of class
/// [`InstClass::Load`] or [`InstClass::Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Effective virtual address.
    pub addr: u64,
    /// Access size in bytes (informational; the caches operate on lines).
    pub size: u8,
}

/// One dynamic instruction as produced by a trace generator.
///
/// Dependences are encoded as *distances*: `dep(d)` means "this instruction
/// reads the value produced by the instruction `d` positions earlier in the
/// same thread's dynamic stream". Distances express the ILP structure of the
/// workload — short distances mean long dependence chains (low ILP), long
/// distances mean independent work (high ILP).
///
/// # Examples
///
/// ```
/// use smt_isa::{DecodedInst, InstClass, RegClass};
///
/// let inst = DecodedInst::builder(InstClass::IntAlu, 0x1000)
///     .dest(RegClass::Int)
///     .dep(1)
///     .build();
/// assert_eq!(inst.class, InstClass::IntAlu);
/// assert_eq!(inst.deps(), [Some(1), None]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedInst {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Functional class.
    pub class: InstClass,
    /// Register class written by this instruction, if any. Loads may write
    /// either file (integer loads vs FP loads).
    pub dest: Option<RegClass>,
    /// Dependence distances to up to two producer instructions (0 = none).
    dep_dist: [u32; 2],
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Control-flow information, for branches.
    pub branch: Option<BranchInfo>,
}

impl DecodedInst {
    /// An inert filler for unoccupied replay-ring slots — never observable
    /// through the bounds-guarded ring interface.
    pub fn placeholder() -> Self {
        DecodedInst {
            pc: 0,
            class: InstClass::IntAlu,
            dest: None,
            dep_dist: [0; 2],
            mem: None,
            branch: None,
        }
    }

    /// Starts building a decoded instruction of the given class at `pc`.
    pub fn builder(class: InstClass, pc: u64) -> DecodedInstBuilder {
        DecodedInstBuilder {
            inst: DecodedInst {
                pc,
                class,
                dest: None,
                dep_dist: [0; 2],
                mem: None,
                branch: None,
            },
        }
    }

    /// Dependence distances as options (`None` = no dependence in that slot).
    #[inline]
    pub fn deps(&self) -> [Option<u32>; 2] {
        [
            (self.dep_dist[0] != 0).then_some(self.dep_dist[0]),
            (self.dep_dist[1] != 0).then_some(self.dep_dist[1]),
        ]
    }

    /// `true` if the instruction is a conditional branch.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(
            self.branch,
            Some(BranchInfo {
                kind: BranchKind::Conditional,
                ..
            })
        )
    }
}

/// Builder for [`DecodedInst`] (see [`DecodedInst::builder`]).
#[derive(Debug, Clone)]
pub struct DecodedInstBuilder {
    inst: DecodedInst,
}

impl DecodedInstBuilder {
    /// Sets the destination register class.
    pub fn dest(mut self, class: RegClass) -> Self {
        self.inst.dest = Some(class);
        self
    }

    /// Adds a dependence on the instruction `distance` positions earlier.
    ///
    /// At most two dependences are kept; additional calls overwrite the
    /// second slot. A distance of zero is ignored.
    pub fn dep(mut self, distance: u32) -> Self {
        if distance == 0 {
            return self;
        }
        if self.inst.dep_dist[0] == 0 {
            self.inst.dep_dist[0] = distance;
        } else {
            self.inst.dep_dist[1] = distance;
        }
        self
    }

    /// Attaches a memory access (loads and stores).
    pub fn mem(mut self, addr: u64, size: u8) -> Self {
        self.inst.mem = Some(MemAccess { addr, size });
        self
    }

    /// Attaches control-flow information (branches).
    pub fn branch(mut self, kind: BranchKind, taken: bool, target: u64) -> Self {
        self.inst.branch = Some(BranchInfo {
            kind,
            taken,
            target,
        });
        self
    }

    /// Finishes the instruction.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a memory class lacks a memory access or a
    /// branch class lacks branch info, which would indicate a generator bug.
    pub fn build(self) -> DecodedInst {
        debug_assert!(
            !self.inst.class.is_mem() || self.inst.mem.is_some(),
            "memory instruction without address"
        );
        debug_assert!(
            self.inst.class != InstClass::Branch || self.inst.branch.is_some(),
            "branch instruction without branch info"
        );
        self.inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_map_to_expected_queues() {
        assert_eq!(InstClass::IntAlu.queue(), QueueKind::Int);
        assert_eq!(InstClass::IntMul.queue(), QueueKind::Int);
        assert_eq!(InstClass::Branch.queue(), QueueKind::Int);
        assert_eq!(InstClass::FpAlu.queue(), QueueKind::Fp);
        assert_eq!(InstClass::FpMul.queue(), QueueKind::Fp);
        assert_eq!(InstClass::FpDiv.queue(), QueueKind::Fp);
        assert_eq!(InstClass::Load.queue(), QueueKind::LoadStore);
        assert_eq!(InstClass::Store.queue(), QueueKind::LoadStore);
    }

    #[test]
    fn latencies_are_positive() {
        for c in InstClass::ALL {
            assert!(c.exec_latency() >= 1, "{c} has zero latency");
        }
    }

    #[test]
    fn fp_and_mem_flags() {
        assert!(InstClass::FpDiv.is_fp());
        assert!(!InstClass::Load.is_fp());
        assert!(InstClass::Load.is_mem());
        assert!(InstClass::Store.is_mem());
        assert!(!InstClass::Branch.is_mem());
    }

    #[test]
    fn builder_collects_two_deps() {
        let i = DecodedInst::builder(InstClass::IntAlu, 0x40)
            .dest(RegClass::Int)
            .dep(3)
            .dep(7)
            .build();
        assert_eq!(i.deps(), [Some(3), Some(7)]);
    }

    #[test]
    fn builder_ignores_zero_dep() {
        let i = DecodedInst::builder(InstClass::IntAlu, 0x40).dep(0).build();
        assert_eq!(i.deps(), [None, None]);
    }

    #[test]
    fn builder_attaches_mem_and_branch() {
        let ld = DecodedInst::builder(InstClass::Load, 0x10)
            .dest(RegClass::Fp)
            .mem(0xdead_bee0, 8)
            .build();
        assert_eq!(ld.mem.unwrap().addr, 0xdead_bee0);
        assert_eq!(ld.dest, Some(RegClass::Fp));

        let br = DecodedInst::builder(InstClass::Branch, 0x20)
            .branch(BranchKind::Conditional, true, 0x80)
            .build();
        assert!(br.is_cond_branch());
        assert!(br.branch.unwrap().taken);
    }

    #[test]
    #[should_panic(expected = "memory instruction without address")]
    #[cfg(debug_assertions)]
    fn builder_rejects_addressless_load() {
        let _ = DecodedInst::builder(InstClass::Load, 0).build();
    }
}
