//! Compact packed instruction records for the hot fetch/replay path.
//!
//! A [`DecodedInst`] is ~64 bytes: two `Option` payloads ([`MemAccess`],
//! [`BranchInfo`]) dominate it, yet they are cold — the pipeline reads
//! them at most once per instruction (address generation, branch
//! prediction) while the 16-byte hot core (pc, dependences, class/flags)
//! is touched by fetch, dispatch and every policy's fetch notification.
//! [`PackedInst`] keeps exactly that hot core; the cold payloads move to
//! sidecar struct-of-arrays lanes owned by the trace store, linked through
//! the [`PackedInst::aux`] index.

use crate::inst::{BranchInfo, BranchKind, DecodedInst, InstClass, MemAccess};
use crate::RegClass;

// Bit layout of `PackedInst::meta` (10 bits used).
const CLASS_MASK: u16 = 0b111; // bits 0..=2: InstClass::ALL index
const DEST_SHIFT: u16 = 3; // bits 3..=4: 0 none, 1 int, 2 fp
const DEST_MASK: u16 = 0b11;
const HAS_MEM: u16 = 1 << 5;
const HAS_BRANCH: u16 = 1 << 6;
const KIND_SHIFT: u16 = 7; // bits 7..=8: BranchKind code
const KIND_MASK: u16 = 0b11;
const TAKEN: u16 = 1 << 9;

impl InstClass {
    /// Dense code of this class: its index in [`InstClass::ALL`].
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            InstClass::IntAlu => 0,
            InstClass::IntMul => 1,
            InstClass::FpAlu => 2,
            InstClass::FpMul => 3,
            InstClass::FpDiv => 4,
            InstClass::Load => 5,
            InstClass::Store => 6,
            InstClass::Branch => 7,
        }
    }

    /// Inverse of [`InstClass::code`].
    ///
    /// # Panics
    ///
    /// Panics if `code >= 8`.
    #[inline]
    pub fn from_code(code: u8) -> InstClass {
        InstClass::ALL[usize::from(code)]
    }
}

#[inline]
fn kind_code(kind: BranchKind) -> u16 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Jump => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
    }
}

#[inline]
fn kind_from_code(code: u16) -> BranchKind {
    match code & KIND_MASK {
        0 => BranchKind::Conditional,
        1 => BranchKind::Jump,
        2 => BranchKind::Call,
        _ => BranchKind::Return,
    }
}

/// The 16-byte hot core of a [`DecodedInst`].
///
/// Dependence distances are stored as `u16` deltas (`0` = no dependence —
/// the same sentinel [`DecodedInst`] uses internally, and unreachable as a
/// real distance because the builder drops zero distances). The `meta`
/// word bit-packs the class, destination-register presence/class, the
/// mem/branch payload presence flags and — for branches — the kind and
/// actual direction, so the hot path answers "is this a taken call?"
/// without touching the sidecar. `aux` is the record's index into its
/// block's sidecar lane (mem *or* branch payload; an instruction never
/// carries both in generated streams).
///
/// # Examples
///
/// ```
/// use smt_isa::{DecodedInst, InstClass, PackedInst, RegClass};
///
/// let d = DecodedInst::builder(InstClass::IntAlu, 0x40)
///     .dest(RegClass::Int)
///     .dep(3)
///     .build();
/// let p = PackedInst::pack(&d, 0);
/// assert_eq!(p.pc, 0x40);
/// assert_eq!(p.class(), InstClass::IntAlu);
/// assert_eq!(p.dep_dists(), [3, 0]);
/// assert_eq!(p.unpack(None, None), d);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedInst {
    /// Program counter.
    pub pc: u64,
    /// Dependence distances (0 = no dependence in that slot).
    dep: [u16; 2],
    /// Bit-packed class / dest / presence flags / branch kind+direction.
    meta: u16,
    /// Index into the owning block's sidecar payload lane.
    aux: u16,
}

impl PackedInst {
    /// An inert filler for unoccupied ring slots — never observable
    /// through a bounds-guarded ring interface.
    pub fn placeholder() -> Self {
        PackedInst {
            pc: 0,
            dep: [0; 2],
            meta: 0,
            aux: 0,
        }
    }

    /// Packs the hot core of `decoded`, tagging it with the caller's
    /// sidecar index `aux`. The cold payloads (`decoded.mem`,
    /// `decoded.branch`) are *not* stored — the caller owns them in its
    /// sidecar lanes; only their presence is recorded.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a dependence distance exceeds `u16::MAX`.
    /// The trace generators clamp distances at 512, far below the limit.
    #[inline]
    pub fn pack(decoded: &DecodedInst, aux: u16) -> Self {
        let deps = decoded.deps();
        let dep = deps.map(|d| {
            let d = d.unwrap_or(0);
            debug_assert!(d <= u32::from(u16::MAX), "dependence distance {d} > u16");
            d as u16
        });
        let mut meta = u16::from(decoded.class.code());
        meta |= match decoded.dest {
            None => 0,
            Some(RegClass::Int) => 1 << DEST_SHIFT,
            Some(RegClass::Fp) => 2 << DEST_SHIFT,
        };
        if decoded.mem.is_some() {
            meta |= HAS_MEM;
        }
        if let Some(b) = decoded.branch {
            meta |= HAS_BRANCH | (kind_code(b.kind) << KIND_SHIFT);
            if b.taken {
                meta |= TAKEN;
            }
        }
        PackedInst {
            pc: decoded.pc,
            dep,
            meta,
            aux,
        }
    }

    /// Reconstructs the full [`DecodedInst`], re-attaching the cold
    /// payloads the caller fetched from its sidecar lanes. Exact inverse
    /// of [`PackedInst::pack`] for every builder-constructible record.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the supplied payloads disagree with the
    /// packed presence flags.
    #[inline]
    pub fn unpack(&self, mem: Option<MemAccess>, branch: Option<BranchInfo>) -> DecodedInst {
        debug_assert_eq!(self.has_mem(), mem.is_some(), "mem payload mismatch");
        debug_assert_eq!(
            self.has_branch(),
            branch.is_some(),
            "branch payload mismatch"
        );
        let mut b = DecodedInst::builder(self.class(), self.pc);
        if let Some(dest) = self.dest() {
            b = b.dest(dest);
        }
        for d in self.dep {
            b = b.dep(u32::from(d));
        }
        if let Some(m) = mem {
            b = b.mem(m.addr, m.size);
        }
        if let Some(br) = branch {
            b = b.branch(br.kind, br.taken, br.target);
        }
        b.build()
    }

    /// Functional class.
    #[inline]
    pub fn class(&self) -> InstClass {
        InstClass::from_code((self.meta & CLASS_MASK) as u8)
    }

    /// Register class written by this instruction, if any.
    #[inline]
    pub fn dest(&self) -> Option<RegClass> {
        match (self.meta >> DEST_SHIFT) & DEST_MASK {
            0 => None,
            1 => Some(RegClass::Int),
            _ => Some(RegClass::Fp),
        }
    }

    /// Dependence distances (0 = no dependence in that slot).
    #[inline]
    pub fn dep_dists(&self) -> [u16; 2] {
        self.dep
    }

    /// `true` if the record carries a [`MemAccess`] payload in its
    /// sidecar lane.
    #[inline]
    pub fn has_mem(&self) -> bool {
        self.meta & HAS_MEM != 0
    }

    /// `true` if the record carries a [`BranchInfo`] payload in its
    /// sidecar lane.
    #[inline]
    pub fn has_branch(&self) -> bool {
        self.meta & HAS_BRANCH != 0
    }

    /// Kind of control-flow transfer, for branch records.
    #[inline]
    pub fn branch_kind(&self) -> Option<BranchKind> {
        self.has_branch()
            .then(|| kind_from_code(self.meta >> KIND_SHIFT))
    }

    /// Actual branch direction (meaningless for non-branches).
    #[inline]
    pub fn taken(&self) -> bool {
        self.meta & TAKEN != 0
    }

    /// `true` if the instruction is a conditional branch.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        self.branch_kind() == Some(BranchKind::Conditional)
    }

    /// `true` if the instruction pushes or pops the return-address stack
    /// (calls and returns).
    #[inline]
    pub fn touches_ras(&self) -> bool {
        matches!(
            self.branch_kind(),
            Some(BranchKind::Call) | Some(BranchKind::Return)
        )
    }

    /// Index of this record's payload in its block's sidecar lane.
    #[inline]
    pub fn aux(&self) -> u16 {
        self.aux
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_packed_inst_fits_16_bytes() {
        assert_eq!(
            std::mem::size_of::<PackedInst>(),
            16,
            "PackedInst must stay a 16-byte record (hot replay-ring traffic)"
        );
    }

    #[test]
    fn class_codes_round_trip() {
        for (i, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(usize::from(c.code()), i);
            assert_eq!(InstClass::from_code(c.code()), *c);
        }
    }

    #[test]
    fn packs_and_unpacks_an_alu_op() {
        let d = DecodedInst::builder(InstClass::IntMul, 0x1234)
            .dest(RegClass::Int)
            .dep(7)
            .dep(512)
            .build();
        let p = PackedInst::pack(&d, 9);
        assert_eq!(p.class(), InstClass::IntMul);
        assert_eq!(p.dest(), Some(RegClass::Int));
        assert_eq!(p.dep_dists(), [7, 512]);
        assert_eq!(p.aux(), 9);
        assert!(!p.has_mem() && !p.has_branch() && !p.taken());
        assert_eq!(p.unpack(None, None), d);
    }

    #[test]
    fn packs_and_unpacks_a_load() {
        let d = DecodedInst::builder(InstClass::Load, 0x40)
            .dest(RegClass::Fp)
            .mem(0xdead_bee0, 8)
            .dep(3)
            .build();
        let p = PackedInst::pack(&d, 2);
        assert!(p.has_mem() && !p.has_branch());
        assert_eq!(p.dest(), Some(RegClass::Fp));
        assert_eq!(p.unpack(d.mem, None), d);
    }

    #[test]
    fn packs_and_unpacks_every_branch_kind() {
        for (kind, taken) in [
            (BranchKind::Conditional, false),
            (BranchKind::Conditional, true),
            (BranchKind::Jump, true),
            (BranchKind::Call, true),
            (BranchKind::Return, true),
        ] {
            let d = DecodedInst::builder(InstClass::Branch, 0x80)
                .branch(kind, taken, 0x100)
                .dep(1)
                .build();
            let p = PackedInst::pack(&d, 0);
            assert_eq!(p.branch_kind(), Some(kind));
            assert_eq!(p.taken(), taken);
            assert_eq!(
                p.touches_ras(),
                matches!(kind, BranchKind::Call | BranchKind::Return)
            );
            assert_eq!(
                p.is_cond_branch(),
                kind == BranchKind::Conditional,
                "{kind:?}"
            );
            assert_eq!(p.unpack(None, d.branch), d);
        }
    }

    #[test]
    fn placeholder_is_inert() {
        let p = PackedInst::placeholder();
        assert_eq!(p.class(), InstClass::IntAlu);
        assert_eq!(p.dest(), None);
        assert!(!p.has_mem() && !p.has_branch());
        assert_eq!(p.branch_kind(), None);
    }
}
