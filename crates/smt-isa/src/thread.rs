//! Hardware-thread (context) identifiers.

use serde::{Deserialize, Serialize};

/// Identifier of a hardware thread (SMT context).
///
/// The evaluated machine supports up to four contexts, matching the paper's
/// workloads (2, 3 and 4 threads; Section 4 explains why larger workloads are
/// not considered). The identifier is a dense index usable directly for
/// per-thread storage.
///
/// # Examples
///
/// ```
/// use smt_isa::ThreadId;
///
/// let t = ThreadId::new(2);
/// assert_eq!(t.index(), 2);
/// assert_eq!(t.to_string(), "T2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreadId(u8);

impl ThreadId {
    /// Maximum number of hardware contexts supported by the simulator.
    pub const MAX_THREADS: usize = 8;

    /// Creates a thread identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ThreadId::MAX_THREADS`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index < Self::MAX_THREADS,
            "thread index {index} exceeds MAX_THREADS ({})",
            Self::MAX_THREADS
        );
        ThreadId(index as u8)
    }

    /// Dense index of this thread, in `0..MAX_THREADS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over the first `n` thread identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `n > ThreadId::MAX_THREADS`.
    pub fn first(n: usize) -> impl Iterator<Item = ThreadId> {
        assert!(n <= Self::MAX_THREADS);
        (0..n).map(ThreadId::new)
    }
}

impl From<ThreadId> for usize {
    #[inline]
    fn from(t: ThreadId) -> usize {
        t.index()
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..ThreadId::MAX_THREADS {
            assert_eq!(ThreadId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_THREADS")]
    fn new_rejects_out_of_range() {
        let _ = ThreadId::new(ThreadId::MAX_THREADS);
    }

    #[test]
    fn first_yields_dense_ids() {
        let ids: Vec<usize> = ThreadId::first(4).map(|t| t.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ThreadId::new(0).to_string(), "T0");
        assert_eq!(ThreadId::new(3).to_string(), "T3");
    }
}
