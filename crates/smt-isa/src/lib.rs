//! Instruction, register and resource model shared by every crate of the
//! DCRA-SMT reproduction.
//!
//! This crate is the *vocabulary* of the simulator: hardware thread
//! identifiers ([`ThreadId`]), instruction classes ([`InstClass`]), the
//! issue-queue each class occupies ([`QueueKind`]), the register classes
//! ([`RegClass`]), the five shared resources controlled by allocation
//! policies ([`ResourceKind`]) and the decoded-instruction record produced by
//! the trace generators ([`DecodedInst`]), together with its 16-byte packed
//! hot-path form ([`PackedInst`]).
//!
//! # Examples
//!
//! ```
//! use smt_isa::{InstClass, QueueKind, ResourceKind};
//!
//! assert_eq!(InstClass::Load.queue(), QueueKind::LoadStore);
//! assert_eq!(QueueKind::LoadStore.resource(), ResourceKind::LsQueue);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inst;
mod packed;
mod thread;

pub use inst::{BranchInfo, BranchKind, DecodedInst, DecodedInstBuilder, InstClass, MemAccess};
pub use packed::PackedInst;
pub use thread::ThreadId;

use serde::{Deserialize, Serialize};

/// Register classes of the modelled machine (integer and floating point).
///
/// The simulated processor has two physical register files, one per class,
/// exactly as the evaluated machine in the paper (Table 2: "Physical
/// Registers 352 (shared)" per file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

impl RegClass {
    /// All register classes, in a fixed order usable for indexed storage.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Dense index of this class (0 = integer, 1 = floating point).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The rename-register resource backed by this register file.
    #[inline]
    pub fn resource(self) -> ResourceKind {
        match self {
            RegClass::Int => ResourceKind::IntRegs,
            RegClass::Fp => ResourceKind::FpRegs,
        }
    }
}

impl std::fmt::Display for RegClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegClass::Int => f.write_str("int"),
            RegClass::Fp => f.write_str("fp"),
        }
    }
}

/// The three issue queues of the modelled machine.
///
/// The paper's baseline (Table 2) has 80-entry integer, floating-point and
/// load/store queues, all shared between threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueueKind {
    /// Integer issue queue (ALU, multiply, branches).
    Int,
    /// Floating-point issue queue.
    Fp,
    /// Load/store issue queue.
    LoadStore,
}

impl QueueKind {
    /// All queue kinds, in a fixed order usable for indexed storage.
    pub const ALL: [QueueKind; 3] = [QueueKind::Int, QueueKind::Fp, QueueKind::LoadStore];

    /// Dense index of this queue (0 = int, 1 = fp, 2 = load/store).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The [`ResourceKind`] occupied by instructions sitting in this queue.
    #[inline]
    pub fn resource(self) -> ResourceKind {
        match self {
            QueueKind::Int => ResourceKind::IntQueue,
            QueueKind::Fp => ResourceKind::FpQueue,
            QueueKind::LoadStore => ResourceKind::LsQueue,
        }
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueKind::Int => f.write_str("intq"),
            QueueKind::Fp => f.write_str("fpq"),
            QueueKind::LoadStore => f.write_str("lsq"),
        }
    }
}

/// The five shared resources directly controlled by allocation policies.
///
/// Section 3.4 of the paper: DCRA keeps one usage counter per thread for each
/// of the three issue queues and the two physical register files (plus two
/// activity counters and a pending L1-miss counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Integer issue-queue entries.
    IntQueue,
    /// Floating-point issue-queue entries.
    FpQueue,
    /// Load/store issue-queue entries.
    LsQueue,
    /// Integer rename (physical) registers.
    IntRegs,
    /// Floating-point rename (physical) registers.
    FpRegs,
}

impl ResourceKind {
    /// All controlled resources, in a fixed order usable for indexed storage.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::IntQueue,
        ResourceKind::FpQueue,
        ResourceKind::LsQueue,
        ResourceKind::IntRegs,
        ResourceKind::FpRegs,
    ];

    /// Number of controlled resource kinds.
    pub const COUNT: usize = 5;

    /// Dense index of this resource, matching the order of [`Self::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// `true` if this is one of the floating-point resources, for which the
    /// paper tracks per-thread activity (Section 3.1.2: integer programs are
    /// *inactive* for FP resources and donate their share).
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, ResourceKind::FpQueue | ResourceKind::FpRegs)
    }

    /// `true` if this resource is an issue queue (as opposed to a register
    /// file). Section 5.3 of the paper uses different sharing factors for
    /// queues and registers at a 500-cycle memory latency.
    #[inline]
    pub fn is_queue(self) -> bool {
        matches!(
            self,
            ResourceKind::IntQueue | ResourceKind::FpQueue | ResourceKind::LsQueue
        )
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceKind::IntQueue => f.write_str("int-iq"),
            ResourceKind::FpQueue => f.write_str("fp-iq"),
            ResourceKind::LsQueue => f.write_str("ls-iq"),
            ResourceKind::IntRegs => f.write_str("int-regs"),
            ResourceKind::FpRegs => f.write_str("fp-regs"),
        }
    }
}

/// A per-resource table indexed by [`ResourceKind`].
///
/// Small convenience container so policies can keep one value per controlled
/// resource without hash maps on the cycle-critical path.
///
/// # Examples
///
/// ```
/// use smt_isa::{PerResource, ResourceKind};
///
/// let mut usage = PerResource::<u32>::default();
/// usage[ResourceKind::IntQueue] += 3;
/// assert_eq!(usage[ResourceKind::IntQueue], 3);
/// assert_eq!(usage[ResourceKind::FpQueue], 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PerResource<T>(pub [T; ResourceKind::COUNT]);

impl<T> PerResource<T> {
    /// Creates a table with every entry set to `value`.
    pub fn filled(value: T) -> Self
    where
        T: Copy,
    {
        PerResource([value; ResourceKind::COUNT])
    }

    /// Iterates over `(kind, &value)` pairs in [`ResourceKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, &T)> {
        ResourceKind::ALL.iter().copied().zip(self.0.iter())
    }
}

impl<T> std::ops::Index<ResourceKind> for PerResource<T> {
    type Output = T;

    #[inline]
    fn index(&self, kind: ResourceKind) -> &T {
        &self.0[kind.index()]
    }
}

impl<T> std::ops::IndexMut<ResourceKind> for PerResource<T> {
    #[inline]
    fn index_mut(&mut self, kind: ResourceKind) -> &mut T {
        &mut self.0[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_class_indices_are_dense() {
        for (i, c) in RegClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn queue_kind_indices_are_dense() {
        for (i, q) in QueueKind::ALL.iter().enumerate() {
            assert_eq!(q.index(), i);
        }
    }

    #[test]
    fn resource_kind_indices_are_dense() {
        for (i, r) in ResourceKind::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(ResourceKind::ALL.len(), ResourceKind::COUNT);
    }

    #[test]
    fn queue_maps_to_matching_resource() {
        assert_eq!(QueueKind::Int.resource(), ResourceKind::IntQueue);
        assert_eq!(QueueKind::Fp.resource(), ResourceKind::FpQueue);
        assert_eq!(QueueKind::LoadStore.resource(), ResourceKind::LsQueue);
    }

    #[test]
    fn reg_class_maps_to_matching_resource() {
        assert_eq!(RegClass::Int.resource(), ResourceKind::IntRegs);
        assert_eq!(RegClass::Fp.resource(), ResourceKind::FpRegs);
    }

    #[test]
    fn fp_resources_are_flagged() {
        assert!(ResourceKind::FpQueue.is_fp());
        assert!(ResourceKind::FpRegs.is_fp());
        assert!(!ResourceKind::IntQueue.is_fp());
        assert!(!ResourceKind::LsQueue.is_fp());
        assert!(!ResourceKind::IntRegs.is_fp());
    }

    #[test]
    fn queue_resources_are_flagged() {
        let queues: Vec<_> = ResourceKind::ALL.iter().filter(|r| r.is_queue()).collect();
        assert_eq!(queues.len(), 3);
        assert!(!ResourceKind::IntRegs.is_queue());
        assert!(!ResourceKind::FpRegs.is_queue());
    }

    #[test]
    fn per_resource_indexing_round_trips() {
        let mut t = PerResource::<u32>::default();
        for (i, r) in ResourceKind::ALL.iter().enumerate() {
            t[*r] = i as u32 + 1;
        }
        for (i, r) in ResourceKind::ALL.iter().enumerate() {
            assert_eq!(t[*r], i as u32 + 1);
        }
        let collected: Vec<_> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(collected, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn displays_are_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for r in ResourceKind::ALL {
            let s = r.to_string();
            assert!(!s.is_empty());
            assert!(seen.insert(s));
        }
    }
}
