//! Benchmark-only crate: see the `benches/` directory. The library part
//! exposes small helpers shared by the bench targets.

#![forbid(unsafe_code)]

/// Builds a simulator over the given benchmarks with the given policy
/// (statically dispatched unless handed a boxed one), functionally
/// prewarmed and settled, ready for timed stepping.
pub fn prepared_sim(
    benches: &[&str],
    policy: impl Into<smt_sim::policy::AnyPolicy>,
) -> smt_sim::Simulator {
    let profiles: Vec<_> = benches
        .iter()
        .map(|b| smt_workloads::spec::profile(b).expect("known benchmark"))
        .collect();
    let mut sim = smt_sim::Simulator::new(
        smt_sim::SimConfig::baseline(benches.len()),
        &profiles,
        policy,
        42,
    );
    sim.prewarm(100_000);
    sim.run_cycles(5_000);
    sim.reset_stats();
    sim
}
