//! Benchmarks that regenerate the paper's *figures* at miniature scale:
//! Figure 2 (resource sensitivity), Figure 4 (DCRA vs SRA), Figure 5
//! (DCRA vs fetch policies), Figures 6/7 (register/latency sensitivity)
//! and the Section-5.2 extra statistics. Each bench exercises the exact
//! experiment code path with reduced run lengths; the `smt-experiments`
//! binaries produce the full-scale numbers recorded in EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smt_experiments::runner::{PolicyKind, RunSpec, Runner};
use smt_experiments::sweep::sweep_policy;
use smt_isa::{PerResource, ResourceKind};
use smt_sim::SimConfig;

fn tiny_lengths() -> RunSpec {
    let mut s = RunSpec::new(&["gzip"], PolicyKind::Icount);
    s.prewarm_insts = 20_000;
    s.warmup_cycles = 1_000;
    s.measure_cycles = 5_000;
    s
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/fig2_resource_sensitivity");
    g.sample_size(10);
    g.bench_function("one_point", |b| {
        let runner = Runner::new();
        let config = smt_experiments::fig2::fig2_config();
        b.iter(|| {
            let mut caps = PerResource::<Option<u32>>::default();
            caps[ResourceKind::LsQueue] = Some(8);
            let mut s =
                RunSpec::new(&["gzip"], PolicyKind::SraCapped(caps)).with_config(config.clone());
            s.prewarm_insts = 20_000;
            s.warmup_cycles = 1_000;
            s.measure_cycles = 5_000;
            black_box(runner.run(&s))
        });
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/fig4_dcra_vs_sra");
    g.sample_size(10);
    g.bench_function("mem2_group1", |b| {
        let runner = Runner::new();
        b.iter(|| {
            let mut out = Vec::new();
            for policy in [PolicyKind::dcra_for_latency(300), PolicyKind::Sra] {
                let mut s = RunSpec::new(&["mcf", "twolf"], policy);
                s.prewarm_insts = 20_000;
                s.warmup_cycles = 1_000;
                s.measure_cycles = 5_000;
                out.push(runner.run(&s).expect("known bench").throughput());
            }
            black_box(out)
        });
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/fig5_policy_sweep");
    g.sample_size(10);
    g.bench_function("icount_all_classes", |b| {
        let runner = Runner::new();
        let lengths = tiny_lengths();
        b.iter(|| {
            black_box(sweep_policy(
                &runner,
                &PolicyKind::Icount,
                &SimConfig::baseline(2),
                &lengths,
            ))
        });
    });
    g.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/fig6_fig7_sensitivity");
    g.sample_size(10);
    g.bench_function("fig6_one_register_point", |b| {
        let runner = Runner::new();
        b.iter(|| {
            let mut config = SimConfig::baseline(2);
            config.phys_regs = 320;
            let mut s = RunSpec::new(&["swim", "mcf"], PolicyKind::dcra_for_latency(300))
                .with_config(config);
            s.prewarm_insts = 20_000;
            s.warmup_cycles = 1_000;
            s.measure_cycles = 5_000;
            black_box(runner.run(&s))
        });
    });
    g.bench_function("fig7_one_latency_point", |b| {
        let runner = Runner::new();
        b.iter(|| {
            let mut config = SimConfig::baseline(2);
            config.mem.memory_latency = 500;
            config.mem.l2.latency = 25;
            let mut s = RunSpec::new(&["swim", "mcf"], PolicyKind::dcra_for_latency(500))
                .with_config(config);
            s.prewarm_insts = 20_000;
            s.warmup_cycles = 1_000;
            s.measure_cycles = 5_000;
            black_box(runner.run(&s))
        });
    });
    g.finish();
}

fn bench_extra(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/sec52_extra_stats");
    g.sample_size(10);
    g.bench_function("frontend_and_mlp", |b| {
        let runner = Runner::new();
        b.iter(|| {
            let mut out = Vec::new();
            for policy in [PolicyKind::FlushPlusPlus, PolicyKind::dcra_for_latency(300)] {
                let mut s = RunSpec::new(&["art", "vpr"], policy);
                s.prewarm_insts = 20_000;
                s.warmup_cycles = 1_000;
                s.measure_cycles = 5_000;
                let o = runner.run(&s).expect("known bench");
                out.push((
                    o.result.total_fetched() as f64 / o.result.total_committed().max(1) as f64,
                    smt_metrics::workload_mlp(&o.result),
                ));
            }
            black_box(out)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig4,
    bench_fig5,
    bench_fig6_fig7,
    bench_extra
);
criterion_main!(benches);
