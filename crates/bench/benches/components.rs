//! Micro-benchmarks of the simulator substrates: caches, branch
//! prediction, trace generation and the DCRA sharing model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dcra::{slow_share, SharingFactor};
use smt_bpred::{BranchPredictor, PredictorConfig};
use smt_isa::{BranchKind, ThreadId};
use smt_mem::{MemoryConfig, MemoryHierarchy};
use smt_workloads::{spec, TraceGenerator};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("mem/dl1_hit", |b| {
        let mut mem = MemoryHierarchy::new(&MemoryConfig::default(), 1);
        let t = ThreadId::new(0);
        mem.access_data(t, 0x1000, false, 0);
        let mut now = 1_000;
        b.iter(|| {
            now += 1;
            black_box(mem.access_data(t, 0x1000, false, now))
        });
    });
    c.bench_function("mem/dl1_miss_stream", |b| {
        let mut mem = MemoryHierarchy::new(&MemoryConfig::default(), 1);
        let t = ThreadId::new(0);
        let mut addr = 0u64;
        let mut now = 0;
        b.iter(|| {
            addr += 64;
            now += 1;
            black_box(mem.access_data(t, addr, false, now))
        });
    });
}

fn bench_bpred(c: &mut Criterion) {
    c.bench_function("bpred/predict_update", |b| {
        let mut bp = BranchPredictor::new(&PredictorConfig::default(), 2);
        let t = ThreadId::new(0);
        let actual = smt_isa::BranchInfo {
            kind: BranchKind::Conditional,
            taken: true,
            target: 0x4000,
        };
        let mut pc = 0x1000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            let p = bp.predict(t, pc, BranchKind::Conditional);
            bp.update(t, pc, actual, p);
            black_box(p)
        });
    });
}

fn bench_generator(c: &mut Criterion) {
    for name in ["gzip", "mcf", "swim"] {
        c.bench_function(format!("workloads/gen_{name}"), |b| {
            let mut g = TraceGenerator::new(spec::profile(name).expect("registry benchmark"), 1, 0);
            b.iter(|| black_box(g.next_inst()));
        });
    }
}

fn bench_sharing_model(c: &mut Criterion) {
    c.bench_function("dcra/slow_share", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for fa in 0..4 {
                for sa in 1..4 {
                    acc = acc.wrapping_add(slow_share(
                        black_box(80),
                        fa,
                        sa,
                        SharingFactor::InversePlus4,
                    ));
                }
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_bpred,
    bench_generator,
    bench_sharing_model
);
criterion_main!(benches);
