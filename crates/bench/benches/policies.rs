//! Whole-simulator throughput benchmarks: cycles simulated per second for
//! each policy on a representative MIX workload. These are the numbers
//! that determine how long the paper-scale experiment sweeps take.

use bench::prepared_sim;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dcra::Dcra;
use smt_experiments::PolicyKind;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_cycles");
    g.throughput(Throughput::Elements(2_000));
    for name in [
        "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
    ] {
        g.bench_function(format!("mix2/{name}"), |b| {
            b.iter_batched(
                || {
                    let policy = PolicyKind::from_name(name).expect("known policy").build();
                    prepared_sim(&["gzip", "mcf"], policy)
                },
                |mut sim| {
                    sim.run_cycles(2_000);
                    sim
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// The acceptance benchmark of the event-driven-wakeup PR: the standard
/// 4-thread mix for 100k measured cycles per iteration, per policy — the
/// same configuration `scripts/bench_snapshot.sh` records into
/// `BENCH_core.json`.
fn bench_mix4_100k(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_sweep");
    g.sample_size(3);
    g.throughput(Throughput::Elements(100_000));
    for name in ["ICOUNT", "DCRA"] {
        g.bench_function(format!("mix4_100k/{name}"), |b| {
            b.iter_batched(
                || {
                    let policy = PolicyKind::from_name(name).expect("known policy").build();
                    prepared_sim(&["art", "gcc", "twolf", "swim"], policy)
                },
                |mut sim| {
                    sim.run_cycles(100_000);
                    sim
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_scaling");
    g.throughput(Throughput::Elements(2_000));
    for (label, benches) in [
        ("1thread", vec!["art"]),
        ("2threads", vec!["art", "gcc"]),
        ("4threads", vec!["art", "gcc", "twolf", "swim"]),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || prepared_sim(&benches, Dcra::default()),
                |mut sim| {
                    sim.run_cycles(2_000);
                    sim
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_mix4_100k,
    bench_thread_scaling
);
criterion_main!(benches);
