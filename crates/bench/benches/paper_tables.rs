//! Benchmarks that regenerate the paper's *tables* at miniature scale:
//! Table 1 (DCRA allocations), Table 3 (benchmark cache behaviour),
//! Table 4 (workload construction) and Table 5 (phase distributions).
//! Each bench runs the same code path as the corresponding
//! `smt-experiments` binary, with run lengths cut down so `cargo bench`
//! finishes quickly; run the binaries for the full-scale numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smt_experiments::runner::{PolicyKind, RunSpec, Runner};
use smt_experiments::{table1, table5};
use smt_workloads::{spec, table4_workloads};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("paper/table1_allocations", |b| {
        b.iter(|| black_box(table1::run()));
    });
}

fn bench_table3(c: &mut Criterion) {
    // One representative MEM and one ILP benchmark at reduced length; the
    // full 20-benchmark calibration is `cargo run --bin table3`.
    let mut g = c.benchmark_group("paper/table3_calibration");
    g.sample_size(10);
    for name in ["mcf", "gzip"] {
        g.bench_function(name, |b| {
            let runner = Runner::new();
            b.iter(|| {
                let mut s = RunSpec::new(&[name], PolicyKind::Icount);
                s.prewarm_insts = 30_000;
                s.warmup_cycles = 2_000;
                s.measure_cycles = 10_000;
                black_box(runner.run(&s))
            });
        });
    }
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("paper/table4_workloads", |b| {
        b.iter(|| {
            let ws = table4_workloads();
            for w in &ws {
                for bench in &w.benchmarks {
                    black_box(spec::profile(bench));
                }
            }
            ws
        });
    });
}

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper/table5_phases");
    g.sample_size(10);
    g.bench_function("2thread_sampling", |b| {
        b.iter(|| black_box(table5::run(2_000).expect("registry benchmarks")));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table3,
    bench_table4,
    bench_table5
);
criterion_main!(benches);
