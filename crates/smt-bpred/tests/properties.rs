//! Property-based tests of the branch-prediction substrate.

use proptest::prelude::*;
use smt_bpred::{BranchPredictor, BranchTargetBuffer, Gshare, PredictorConfig, ReturnAddressStack};
use smt_isa::{BranchInfo, BranchKind, ThreadId};

proptest! {
    /// The RAS behaves like a bounded stack: for push/pop sequences within
    /// capacity it matches a Vec-based model exactly.
    #[test]
    fn ras_matches_model_within_capacity(ops in proptest::collection::vec(any::<Option<u64>>(), 1..200)) {
        let mut ras = ReturnAddressStack::new(256);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    if model.len() < 256 {
                        ras.push(addr);
                        model.push(addr);
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), model.pop());
                }
            }
            prop_assert_eq!(ras.len(), model.len());
        }
    }

    /// BTB: a just-inserted entry is always retrievable with its latest
    /// target.
    #[test]
    fn btb_returns_latest_target(pairs in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 1..100)) {
        let mut btb = BranchTargetBuffer::new(256, 4);
        for (pc, target) in pairs {
            btb.insert(pc, target);
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
    }

    /// Gshare converges on any fixed-direction branch regardless of seed
    /// history.
    #[test]
    fn gshare_learns_constant_branches(pc in 0u64..1_000_000, dir: bool, noise in 0u64..64) {
        let mut g = Gshare::new(4096, 1);
        let t = ThreadId::new(0);
        // Pollute history a little first.
        for i in 0..noise {
            g.update(t, pc.wrapping_add(64 + i * 4), i % 3 == 0);
        }
        let mut correct = 0;
        for _ in 0..200 {
            if g.predict(t, pc) == dir {
                correct += 1;
            }
            g.update(t, pc, dir);
        }
        prop_assert!(correct > 150, "only {correct}/200 correct on a constant branch");
    }

    /// The full predictor's misprediction detection agrees with a direct
    /// recomputation for arbitrary outcomes.
    #[test]
    fn prediction_accounting_is_consistent(outcomes in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut bp = BranchPredictor::new(&PredictorConfig::default(), 1);
        let t = ThreadId::new(0);
        for (i, taken) in outcomes.iter().enumerate() {
            let pc = 0x1000 + (i as u64 % 16) * 4;
            let actual = BranchInfo { kind: BranchKind::Conditional, taken: *taken, target: 0x9000 };
            let p = bp.predict(t, pc, BranchKind::Conditional);
            bp.update(t, pc, actual, p);
        }
        let s = bp.stats();
        prop_assert_eq!(s.cond_lookups, outcomes.len() as u64);
        prop_assert!(s.cond_mispredicts <= s.cond_lookups);
    }
}
