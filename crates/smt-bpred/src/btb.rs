//! Branch target buffer.

/// A set-associative branch target buffer with LRU replacement.
///
/// Shared between threads, as in the modelled machine (256 entries, 4-way in
/// the paper's baseline).
///
/// # Examples
///
/// ```
/// use smt_bpred::BranchTargetBuffer;
///
/// let mut btb = BranchTargetBuffer::new(256, 4);
/// btb.insert(0x1000, 0x2000);
/// assert_eq!(btb.lookup(0x1000), Some(0x2000));
/// assert_eq!(btb.lookup(0x3000), None);
/// ```
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    /// `sets × ways` entries; `None` = invalid.
    entries: Vec<Option<BtbEntry>>,
    /// Per-(set, way) LRU stamps.
    lru: Vec<u64>,
    sets: usize,
    ways: usize,
    tick: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BtbEntry {
    tag: u64,
    target: u64,
}

impl BranchTargetBuffer {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `entries` is not a multiple of `ways`, or
    /// the resulting set count is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0, "BTB needs at least one way");
        assert!(
            entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        BranchTargetBuffer {
            entries: vec![None; entries],
            lru: vec![0; entries],
            sets,
            ways,
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, pc: u64) -> u64 {
        (pc >> 2) / self.sets as u64
    }

    /// Invalidates every entry and zeroes the LRU clock, keeping the
    /// allocations. Bit-identical to a freshly built BTB.
    pub fn reset_cold(&mut self) {
        self.entries.fill(None);
        self.lru.fill(0);
        self.tick = 0;
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        self.tick += 1;
        for way in 0..self.ways {
            let idx = set * self.ways + way;
            if let Some(e) = self.entries[idx] {
                if e.tag == tag {
                    self.lru[idx] = self.tick;
                    return Some(e.target);
                }
            }
        }
        None
    }

    /// Inserts (or refreshes) the target of the taken branch at `pc`,
    /// evicting the LRU way on conflict.
    pub fn insert(&mut self, pc: u64, target: u64) {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        self.tick += 1;
        let base = set * self.ways;
        // Hit or free slot first.
        let mut victim = base;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            let idx = base + way;
            match self.entries[idx] {
                Some(e) if e.tag == tag => {
                    self.entries[idx] = Some(BtbEntry { tag, target });
                    self.lru[idx] = self.tick;
                    return;
                }
                None => {
                    self.entries[idx] = Some(BtbEntry { tag, target });
                    self.lru[idx] = self.tick;
                    return;
                }
                Some(_) => {
                    if self.lru[idx] < oldest {
                        oldest = self.lru[idx];
                        victim = idx;
                    }
                }
            }
        }
        self.entries[victim] = Some(BtbEntry { tag, target });
        self.lru[victim] = self.tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup() {
        let mut btb = BranchTargetBuffer::new(16, 4);
        btb.insert(0x100, 0x200);
        assert_eq!(btb.lookup(0x100), Some(0x200));
    }

    #[test]
    fn update_replaces_target() {
        let mut btb = BranchTargetBuffer::new(16, 4);
        btb.insert(0x100, 0x200);
        btb.insert(0x100, 0x300);
        assert_eq!(btb.lookup(0x100), Some(0x300));
    }

    #[test]
    fn lru_eviction_on_conflict() {
        // 8 entries, 2 ways -> 4 sets; three branches map to the same
        // set (stride = 4 sets * 4 bytes).
        let mut btb = BranchTargetBuffer::new(8, 2);
        let stride = 4 * 4;
        btb.insert(0x100, 1);
        btb.insert(0x100 + stride, 2);
        // Touch the first so the second becomes LRU.
        assert_eq!(btb.lookup(0x100), Some(1));
        btb.insert(0x100 + 2 * stride, 3);
        assert_eq!(btb.lookup(0x100), Some(1), "MRU entry must survive");
        assert_eq!(btb.lookup(0x100 + stride), None, "LRU entry evicted");
        assert_eq!(btb.lookup(0x100 + 2 * stride), Some(3));
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn rejects_bad_geometry() {
        let _ = BranchTargetBuffer::new(10, 4);
    }
}
