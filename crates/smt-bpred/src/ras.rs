//! Return address stack.

/// A bounded return-address stack (one per hardware thread).
///
/// Pushing beyond capacity wraps around and overwrites the oldest entry, as
/// hardware RAS implementations do; popping an empty stack returns `None`.
///
/// # Examples
///
/// ```
/// use smt_bpred::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(0x100);
/// ras.push(0x200);
/// assert_eq!(ras.pop(), Some(0x200));
/// assert_eq!(ras.pop(), Some(0x100));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    slots: Vec<u64>,
    top: usize,
    len: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        ReturnAddressStack {
            slots: vec![0; capacity],
            top: 0,
            len: 0,
        }
    }

    /// Pushes a return address, overwriting the oldest entry when full.
    pub fn push(&mut self, addr: u64) {
        self.slots[self.top] = addr;
        self.top = (self.top + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    /// Pops the most recent return address, or `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.len -= 1;
        Some(self.slots[self.top])
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no valid entries remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all entries (used on pipeline flush).
    pub fn clear(&mut self) {
        self.len = 0;
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        for a in 1..=5u64 {
            ras.push(a * 0x10);
        }
        for a in (1..=5u64).rev() {
            assert_eq!(ras.pop(), Some(a * 0x10));
        }
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_wraps_and_keeps_newest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn clear_empties_stack() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(7);
        ras.clear();
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
