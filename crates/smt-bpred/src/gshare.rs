//! gshare direction predictor.

use smt_isa::ThreadId;

/// A gshare direction predictor: a shared table of 2-bit saturating counters
/// indexed by `PC xor history`, with a per-thread global history register.
///
/// # Examples
///
/// ```
/// use smt_bpred::Gshare;
/// use smt_isa::ThreadId;
///
/// let mut g = Gshare::new(1024, 1);
/// let t = ThreadId::new(0);
/// for _ in 0..32 {
///     let _ = g.predict(t, 0x400);
///     g.update(t, 0x400, true);
/// }
/// assert!(g.predict(t, 0x400));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    /// 2-bit saturating counters, initialised weakly not-taken (1).
    counters: Vec<u8>,
    /// Per-thread global branch history.
    history: Vec<u64>,
    index_mask: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a predictor with `entries` counters for `threads` contexts.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize, threads: usize) -> Self {
        Self::with_history(entries, threads, 8)
    }

    /// Creates a predictor with an explicit global-history length.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn with_history(entries: usize, threads: usize, history_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "gshare entries must be a power of two"
        );
        let history_bits = history_bits.min(entries.trailing_zeros());
        Gshare {
            counters: vec![1; entries],
            history: vec![0; threads],
            index_mask: entries as u64 - 1,
            history_bits,
        }
    }

    #[inline]
    fn index(&self, t: ThreadId, pc: u64) -> usize {
        let h = self.history[t.index()] & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ h) & self.index_mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[inline]
    pub fn predict(&self, t: ThreadId, pc: u64) -> bool {
        self.counters[self.index(t, pc)] >= 2
    }

    /// Returns the predictor to its power-on state: all counters weakly
    /// not-taken, all histories cleared. Bit-identical to a fresh table.
    pub fn reset_cold(&mut self) {
        self.counters.fill(1);
        self.history.fill(0);
    }

    /// Trains the counter and shifts the outcome into the thread's history.
    #[inline]
    pub fn update(&mut self, t: ThreadId, pc: u64, taken: bool) {
        let idx = self.index(t, pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let h = &mut self.history[t.index()];
        *h = (*h << 1) | taken as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Gshare::new(1000, 1);
    }

    #[test]
    fn counters_saturate() {
        let mut g = Gshare::new(64, 1);
        let t = ThreadId::new(0);
        for _ in 0..100 {
            g.update(t, 0x0, true);
        }
        assert!(g.counters.iter().all(|&c| c <= 3));
        for _ in 0..200 {
            g.update(t, 0x0, false);
        }
        assert!(g.counters.iter().all(|&c| c <= 3));
    }

    #[test]
    fn learns_alternating_pattern_through_history() {
        let mut g = Gshare::new(4096, 1);
        let t = ThreadId::new(0);
        // Period-2 pattern: with history the predictor becomes near-perfect.
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000u64 {
            let actual = i % 2 == 0;
            let pred = g.predict(t, 0x800);
            g.update(t, 0x800, actual);
            if i >= 1000 {
                total += 1;
                if pred == actual {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "gshare should learn a period-2 pattern, got {correct}/{total}"
        );
    }
}
