//! Branch-prediction substrate for the DCRA-SMT simulator.
//!
//! Models the paper's front end (Table 2): a 16K-entry **gshare** direction
//! predictor, a 256-entry 4-way **branch target buffer** and a 256-entry
//! **return address stack** per thread. The [`BranchPredictor`] facade wires
//! the three structures together and exposes the predict/update interface the
//! fetch stage uses.
//!
//! # Examples
//!
//! ```
//! use smt_bpred::{BranchPredictor, PredictorConfig};
//! use smt_isa::{BranchInfo, BranchKind, ThreadId};
//!
//! let mut bp = BranchPredictor::new(&PredictorConfig::default(), 4);
//! let t = ThreadId::new(0);
//! let actual = BranchInfo { kind: BranchKind::Conditional, taken: true, target: 0x40 };
//! // Predict, then train on the outcome.
//! let pred = bp.predict(t, 0x1000, actual.kind);
//! bp.update(t, 0x1000, actual, pred);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod gshare;
mod ras;

pub use btb::BranchTargetBuffer;
pub use gshare::Gshare;
pub use ras::ReturnAddressStack;

use serde::{Deserialize, Serialize};
use smt_isa::{BranchInfo, BranchKind, ThreadId};

/// Configuration of the branch-prediction structures.
///
/// Defaults match the paper's baseline (Table 2): 16K-entry gshare,
/// 256-entry 4-way BTB, 256-entry RAS.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Number of 2-bit counters in the gshare pattern history table.
    pub gshare_entries: usize,
    /// Total BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address-stack depth (per thread).
    pub ras_entries: usize,
    /// Global-history length (bits) of the gshare predictor. Shorter
    /// histories train far faster on the synthetic branch-site populations
    /// used by the workload substrate.
    pub history_bits: u32,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            gshare_entries: 16 * 1024,
            btb_entries: 256,
            btb_ways: 4,
            ras_entries: 256,
            history_bits: 8,
        }
    }
}

/// Outcome of a branch prediction, carried with the instruction until the
/// branch resolves so the predictor can be trained and mispredictions
/// detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target (`None` when the BTB missed or the branch was
    /// predicted not-taken).
    pub target: Option<u64>,
}

impl Prediction {
    /// `true` if the prediction disagrees with the actual outcome, either in
    /// direction or (for taken branches) in target.
    #[inline]
    pub fn mispredicted(&self, actual: BranchInfo) -> bool {
        if self.taken != actual.taken {
            return true;
        }
        if actual.taken {
            match self.target {
                Some(t) => t != actual.target,
                None => true,
            }
        } else {
            false
        }
    }
}

/// The complete front-end predictor: gshare + BTB + per-thread RAS.
///
/// Branch history registers are per-thread (so threads do not destructively
/// alias each other's history) while the pattern history table and BTB are
/// shared, modelling the resource interference that an SMT front end really
/// has.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    gshare: Gshare,
    btb: BranchTargetBuffer,
    ras: Vec<ReturnAddressStack>,
    stats: PredictorStats,
}

/// Aggregate prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub cond_lookups: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Target mispredictions (BTB/RAS wrong or missing on a taken branch).
    pub target_mispredicts: u64,
}

impl PredictorStats {
    /// Direction misprediction rate over conditional branches, in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_lookups == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_lookups as f64
        }
    }
}

impl BranchPredictor {
    /// Creates a predictor for `threads` hardware contexts.
    ///
    /// # Panics
    ///
    /// Panics if any size in `config` is zero or not a power of two where a
    /// power of two is required (gshare entries).
    pub fn new(config: &PredictorConfig, threads: usize) -> Self {
        BranchPredictor {
            gshare: Gshare::with_history(config.gshare_entries, threads, config.history_bits),
            btb: BranchTargetBuffer::new(config.btb_entries, config.btb_ways),
            ras: (0..threads)
                .map(|_| ReturnAddressStack::new(config.ras_entries))
                .collect(),
            stats: PredictorStats::default(),
        }
    }

    /// Predicts the branch at `pc` for thread `t`.
    ///
    /// Calls (`BranchKind::Call`) push `pc + 4` on the thread's RAS; returns
    /// pop it. Unconditional kinds are always predicted taken.
    pub fn predict(&mut self, t: ThreadId, pc: u64, kind: BranchKind) -> Prediction {
        match kind {
            BranchKind::Conditional => {
                self.stats.cond_lookups += 1;
                let taken = self.gshare.predict(t, pc);
                let target = if taken { self.btb.lookup(pc) } else { None };
                Prediction { taken, target }
            }
            BranchKind::Jump => Prediction {
                taken: true,
                target: self.btb.lookup(pc),
            },
            BranchKind::Call => {
                self.ras[t.index()].push(pc.wrapping_add(4));
                Prediction {
                    taken: true,
                    target: self.btb.lookup(pc),
                }
            }
            BranchKind::Return => Prediction {
                taken: true,
                target: self.ras[t.index()].pop(),
            },
        }
    }

    /// Trains the predictor with the actual outcome of a previously predicted
    /// branch and records misprediction statistics.
    pub fn update(&mut self, t: ThreadId, pc: u64, actual: BranchInfo, prediction: Prediction) {
        if actual.kind == BranchKind::Conditional {
            self.gshare.update(t, pc, actual.taken);
            if prediction.taken != actual.taken {
                self.stats.cond_mispredicts += 1;
            } else if actual.taken && prediction.target != Some(actual.target) {
                self.stats.target_mispredicts += 1;
            }
        } else if prediction.mispredicted(actual) {
            self.stats.target_mispredicts += 1;
        }
        if actual.taken && actual.kind != BranchKind::Return {
            self.btb.insert(pc, actual.target);
        }
    }

    /// Repairs the thread's RAS after a pipeline flush (squashed calls and
    /// returns leave the stack slightly off; real hardware checkpoints, we
    /// conservatively clear).
    pub fn flush_thread(&mut self, t: ThreadId) {
        self.ras[t.index()].clear();
    }

    /// Prediction statistics accumulated so far.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Clears accumulated statistics (predictor state is kept). Used when a
    /// measurement window starts after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    /// Returns the whole front end to its power-on state — untrained
    /// gshare, empty BTB and RAS, zeroed statistics — retaining every
    /// allocation. Bit-identical to a freshly constructed predictor;
    /// simulation sessions rely on this to reuse one predictor across
    /// many runs.
    pub fn reset_cold(&mut self) {
        self.gshare.reset_cold();
        self.btb.reset_cold();
        for ras in &mut self.ras {
            ras.clear();
        }
        self.stats = PredictorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(taken: bool, target: u64) -> BranchInfo {
        BranchInfo {
            kind: BranchKind::Conditional,
            taken,
            target,
        }
    }

    #[test]
    fn learns_strongly_biased_branch() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default(), 2);
        let t = ThreadId::new(0);
        // Train a always-taken loop branch.
        for _ in 0..64 {
            let p = bp.predict(t, 0x1000, BranchKind::Conditional);
            bp.update(t, 0x1000, cond(true, 0x0f00), p);
        }
        let p = bp.predict(t, 0x1000, BranchKind::Conditional);
        assert!(p.taken, "gshare should learn an always-taken branch");
        assert_eq!(p.target, Some(0x0f00), "BTB should supply the target");
        assert!(bp.stats().mispredict_rate() < 0.5);
    }

    #[test]
    fn ras_predicts_matching_return() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default(), 1);
        let t = ThreadId::new(0);
        let call = BranchInfo {
            kind: BranchKind::Call,
            taken: true,
            target: 0x4000,
        };
        let p = bp.predict(t, 0x100, BranchKind::Call);
        bp.update(t, 0x100, call, p);
        let ret = bp.predict(t, 0x4040, BranchKind::Return);
        assert_eq!(ret.target, Some(0x104), "RAS should return call-site + 4");
    }

    #[test]
    fn mispredict_detection_covers_direction_and_target() {
        let p = Prediction {
            taken: true,
            target: Some(0x40),
        };
        assert!(p.mispredicted(cond(false, 0)));
        assert!(p.mispredicted(cond(true, 0x80)));
        assert!(!p.mispredicted(cond(true, 0x40)));
        let nt = Prediction {
            taken: false,
            target: None,
        };
        assert!(!nt.mispredicted(cond(false, 0)));
        assert!(nt.mispredicted(cond(true, 0x40)));
    }

    #[test]
    fn flush_clears_ras() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default(), 1);
        let t = ThreadId::new(0);
        bp.predict(t, 0x100, BranchKind::Call);
        bp.flush_thread(t);
        let ret = bp.predict(t, 0x200, BranchKind::Return);
        assert_eq!(ret.target, None, "flushed RAS must not supply a target");
    }

    #[test]
    fn per_thread_history_is_isolated() {
        let mut bp = BranchPredictor::new(&PredictorConfig::default(), 2);
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        // Thread A trains taken at one PC; thread B trains not-taken at a
        // different PC. Histories are separate, tables are shared.
        for _ in 0..32 {
            let pa = bp.predict(a, 0x1000, BranchKind::Conditional);
            bp.update(a, 0x1000, cond(true, 0x2000), pa);
            let pb = bp.predict(b, 0x3000, BranchKind::Conditional);
            bp.update(b, 0x3000, cond(false, 0x4000), pb);
        }
        assert!(bp.predict(a, 0x1000, BranchKind::Conditional).taken);
        assert!(!bp.predict(b, 0x3000, BranchKind::Conditional).taken);
    }
}
