//! Chaos soak: push hundreds of mixed good/faulty runs through the
//! fault-isolated engine at several worker counts and assert the full
//! containment contract — the process never aborts, every injected fault
//! surfaces as its typed [`RunError`], and every non-faulted run stays
//! bit-identical to a fault-free sweep of the same specs.

use dcra_smt::experiments::chaos::{silence_chaos_panics, FaultKind, FaultPlan, CHAOS_MARKER};
use dcra_smt::experiments::{
    EngineOptions, PolicyKind, RetryPolicy, RunError, RunOutcome, RunSpec, Runner,
};
use std::sync::Mutex;

const SOAK_SEED: u64 = 0xC4A0_57AC;
const FAULT_SHARE: f64 = 0.35;

/// ≥200 small runs cycling over workload mixes and every canonical policy.
fn soak_specs() -> Vec<RunSpec> {
    let mixes: [&[&str]; 6] = [
        &["gzip", "mcf"],
        &["art", "gcc"],
        &["swim", "twolf"],
        &["mcf", "art", "gzip"],
        &["gcc", "eon"],
        &["bzip2", "vpr"],
    ];
    let policies = [
        PolicyKind::Icount,
        PolicyKind::Flush,
        PolicyKind::FlushPlusPlus,
        PolicyKind::Sra,
        PolicyKind::dcra_for_latency(300),
    ];
    (0..210)
        .map(|i| {
            let mut s = RunSpec::new(mixes[i % mixes.len()], policies[i % policies.len()].clone());
            s.seed = 42 + i as u64;
            s.prewarm_insts = 2_000;
            s.warmup_cycles = 300;
            s.measure_cycles = 1_500;
            s
        })
        .collect()
}

#[test]
fn chaos_soak_contains_every_fault_and_preserves_good_runs() {
    silence_chaos_panics();

    let clean = soak_specs();
    let plan = FaultPlan::seeded(SOAK_SEED, clean.len(), FAULT_SHARE);
    assert!(
        plan.fault_count() * 4 >= clean.len(),
        "plan must sabotage at least 25% of runs (got {}/{})",
        plan.fault_count(),
        clean.len()
    );
    let faulty = plan.instrument(&clean);

    // Fault-free reference sweep: the bit-identity baseline.
    let runner = Runner::new();
    let baseline: Vec<_> = runner
        .run_all_with_workers(&clean, 2)
        .into_iter()
        .map(|o| o.into_stats().expect("clean specs run clean"))
        .collect();

    let opts = EngineOptions {
        retry: RetryPolicy::immediate(2),
        ..EngineOptions::default()
    };
    for workers in [1usize, 4, 8] {
        let outcomes: Mutex<Vec<Option<RunOutcome>>> =
            Mutex::new(clean.iter().map(|_| None).collect());
        let report = runner.run_isolated(&faulty, workers, &opts, |i, outcome| {
            // Record first so the assertion below still sees the outcome,
            // then detonate for the indices the plan poisons: the engine
            // must catch the unwind and keep the sink mutex usable.
            outcomes.lock().unwrap()[i] = Some(outcome);
            if plan.poisons_sink(i) {
                panic!("{CHAOS_MARKER}: sink detonated for run {i}");
            }
        });

        let outcomes = outcomes.into_inner().unwrap();
        let mut expected_completed = 0;
        let mut expected_failed = 0;
        let mut expected_sink_panics = Vec::new();
        for (i, slot) in outcomes.iter().enumerate() {
            let outcome = slot.as_ref().expect("sink covered every spec");
            match plan.fault_at(i) {
                None => {
                    expected_completed += 1;
                    let stats = outcome.stats().unwrap_or_else(|| {
                        panic!("run {i} ({workers} workers) failed without a fault")
                    });
                    assert_eq!(outcome.attempts(), 1, "clean run {i} must not retry");
                    assert_eq!(
                        stats, &baseline[i],
                        "run {i} ({workers} workers) drifted from the fault-free sweep"
                    );
                }
                Some(FaultKind::PoisonedSink) => {
                    // The run itself is healthy — only its delivery blows up.
                    expected_completed += 1;
                    expected_sink_panics.push(i);
                    assert_eq!(
                        outcome.stats().expect("poisoned-sink run completes"),
                        &baseline[i],
                        "run {i}: sink poisoning must not perturb the simulation"
                    );
                }
                Some(FaultKind::TransientPanic) => {
                    expected_completed += 1;
                    match outcome {
                        RunOutcome::Completed { stats, attempts } => {
                            assert_eq!(*attempts, 2, "run {i} must succeed on the retry");
                            assert_eq!(
                                stats, &baseline[i],
                                "run {i}: retried run drifted from the fault-free sweep"
                            );
                        }
                        RunOutcome::Failed { error, .. } => {
                            panic!("run {i}: transient fault did not recover: {error}")
                        }
                    }
                }
                Some(FaultKind::Panic) => {
                    expected_failed += 1;
                    match outcome.error() {
                        Some(RunError::Panicked { message }) => {
                            assert!(
                                message.contains(CHAOS_MARKER),
                                "run {i}: unexpected panic message {message:?}"
                            );
                            assert_eq!(
                                outcome.attempts(),
                                2,
                                "run {i}: persistent panic must exhaust both attempts"
                            );
                        }
                        other => panic!("run {i}: expected Panicked, got {other:?}"),
                    }
                }
                Some(FaultKind::InvalidConfig) => {
                    expected_failed += 1;
                    assert!(
                        matches!(outcome.error(), Some(RunError::InvalidSpec { .. })),
                        "run {i}: expected InvalidSpec, got {:?}",
                        outcome.error()
                    );
                }
                Some(FaultKind::UnknownBenchmark) => {
                    expected_failed += 1;
                    match outcome.error() {
                        Some(RunError::UnknownBenchmark { bench }) => {
                            assert_eq!(bench, "__chaos_unknown__")
                        }
                        other => panic!("run {i}: expected UnknownBenchmark, got {other:?}"),
                    }
                }
                Some(FaultKind::Livelock) => {
                    expected_failed += 1;
                    assert!(
                        matches!(outcome.error(), Some(RunError::Livelock { window: 1, .. })),
                        "run {i}: expected Livelock, got {:?}",
                        outcome.error()
                    );
                }
                Some(FaultKind::CycleCap) => {
                    expected_failed += 1;
                    assert!(
                        matches!(
                            outcome.error(),
                            Some(RunError::CycleBudget { limit: 50, .. })
                        ),
                        "run {i}: expected CycleBudget, got {:?}",
                        outcome.error()
                    );
                }
            }
        }
        assert_eq!(
            report.completed, expected_completed,
            "{workers} workers: completed count"
        );
        assert_eq!(
            report.failed, expected_failed,
            "{workers} workers: failed count"
        );
        assert_eq!(
            report.rejected, 0,
            "{workers} workers: nothing was rejected"
        );
        assert_eq!(
            report.sink_panics, expected_sink_panics,
            "{workers} workers: every poisoned delivery must be reported"
        );
    }
}

/// Admission control under chaos: capping the queue rejects the tail as
/// typed [`RunError::QueueFull`] failures while the admitted prefix still
/// honours the full containment contract.
#[test]
fn chaos_soak_respects_admission_control() {
    silence_chaos_panics();

    let clean = soak_specs();
    let plan = FaultPlan::seeded(SOAK_SEED, clean.len(), FAULT_SHARE);
    let faulty = plan.instrument(&clean);
    let capacity = 40usize;

    let runner = Runner::new();
    let opts = EngineOptions {
        retry: RetryPolicy::immediate(2),
        queue_capacity: Some(capacity),
        ..EngineOptions::default()
    };
    let outcomes: Mutex<Vec<Option<RunOutcome>>> = Mutex::new(clean.iter().map(|_| None).collect());
    let report = runner.run_isolated(&faulty, 4, &opts, |i, outcome| {
        outcomes.lock().unwrap()[i] = Some(outcome);
        if plan.poisons_sink(i) {
            panic!("{CHAOS_MARKER}: sink detonated for run {i}");
        }
    });

    let outcomes = outcomes.into_inner().unwrap();
    for (i, slot) in outcomes.iter().enumerate() {
        let outcome = slot.as_ref().expect("sink covered every spec");
        if i >= capacity {
            match outcome.error() {
                Some(RunError::QueueFull {
                    capacity: cap,
                    depth,
                }) => {
                    assert_eq!((*cap, *depth), (capacity, faulty.len()));
                }
                other => panic!("run {i}: expected QueueFull, got {other:?}"),
            }
        } else if plan.fault_at(i).is_none() {
            assert!(
                outcome.is_completed(),
                "admitted clean run {i} must complete"
            );
        }
    }
    assert_eq!(
        report.completed + report.failed - report.rejected,
        capacity,
        "exactly the admitted prefix was executed"
    );
    assert_eq!(report.rejected, faulty.len() - capacity);
}
