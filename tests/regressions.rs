//! Regression tests for specific defects found during bring-up. Each test
//! pins the behaviour that fixed a real failure mode, so refactors cannot
//! silently reintroduce it.

use dcra_smt::isa::ThreadId;
use dcra_smt::policies::by_name;
use dcra_smt::sim::{SimConfig, Simulator};
use dcra_smt::workloads::{spec, TraceGenerator};

fn sim(benches: &[&str], policy: &str, seed: u64) -> Simulator {
    let profiles: Vec<_> = benches
        .iter()
        .map(|b| spec::profile(b).expect("registry benchmark"))
        .collect();
    Simulator::new(
        SimConfig::baseline(benches.len()),
        &profiles,
        by_name(policy).expect("known policy name"),
        seed,
    )
}

/// Regression: with three or more threads, identical per-thread base
/// addresses used to map every thread's first fetch block to the same
/// I-cache set, and a 2-way IL1 livelocked (zero instructions fetched,
/// forever). The per-thread address stagger fixed it.
#[test]
fn three_plus_threads_fetch_from_cycle_zero() {
    for n in [3usize, 4] {
        let benches: Vec<&str> = ["gzip", "twolf", "bzip2", "mcf"][..n].to_vec();
        let mut s = sim(&benches, "RR", 42);
        s.run_cycles(30_000);
        let r = s.result();
        for (i, t) in r.threads.iter().enumerate() {
            assert!(
                t.fetched > 100,
                "{n}-thread run: thread {i} fetched only {} instructions \
                 (I-cache set-conflict livelock?)",
                t.fetched
            );
        }
    }
}

/// Regression: the functional warm-up used to clone the *same* generator,
/// pre-installing the exact cold lines of the measured run and erasing
/// its compulsory L2 misses. Warm-up must use a decorrelated twin.
#[test]
fn prewarm_does_not_erase_cold_misses() {
    let mut s = sim(&["mcf"], "ICOUNT", 42);
    s.prewarm(300_000);
    s.run_cycles(20_000);
    s.reset_stats();
    s.run_cycles(120_000);
    let m = s.memory().thread_stats(ThreadId::new(0));
    assert!(
        m.l2_miss_rate() > 0.05,
        "mcf measured L2 miss rate {:.3} — prewarm leaked future cold lines?",
        m.l2_miss_rate()
    );
}

/// Regression: the decorrelated twin itself — same regions, different
/// stream — must not replay the original's cold-region path (the streaming
/// cursor used to start at 0 for both).
#[test]
fn decorrelated_twin_walks_a_different_cold_path() {
    let p = spec::profile("swim").unwrap();
    let a = TraceGenerator::new(p, 9, 0);
    let mut twin = a.decorrelated(1);
    let mut orig = a.clone();
    let cold_addrs = |g: &mut TraceGenerator| -> Vec<u64> {
        let mut v = Vec::new();
        while v.len() < 50 {
            if let Some(m) = g.next_inst().mem {
                // Cold region lives above the +0x4000_0000 offset.
                if m.addr & 0xF_FFFF_FFFF >= 0x5000_0000 {
                    v.push(m.addr);
                }
            }
        }
        v
    };
    let a_cold = cold_addrs(&mut orig);
    let t_cold = cold_addrs(&mut twin);
    let overlap = a_cold.iter().filter(|x| t_cold.contains(x)).count();
    assert!(
        overlap < 10,
        "cold paths overlap in {overlap}/50 addresses — warm-up would erase misses"
    );
}

/// Regression: a thread blocked by STALL whose pending load has already
/// committed must resume fetching (the stall must never latch).
#[test]
fn stall_gate_releases() {
    let mut s = sim(&["art", "gzip"], "STALL", 7);
    s.prewarm(150_000);
    s.run_cycles(10_000);
    s.reset_stats();
    s.run_cycles(100_000);
    let r = s.result();
    assert!(
        r.threads[0].committed > 2_000,
        "art committed only {} under STALL — stall latch regression",
        r.threads[0].committed
    );
}

/// Regression: FLUSH++ used to underflow its per-window load counters when
/// the simulator's statistics were reset between windows.
#[test]
fn flushpp_survives_stat_reset() {
    let mut s = sim(&["swim", "mcf"], "FLUSH++", 11);
    s.run_cycles(6_000); // past the first 4096-cycle window
    s.reset_stats(); // rewinds the absolute counters
    s.run_cycles(12_000); // would underflow without saturating arithmetic
    assert!(s.result().total_committed() > 0);
}

/// Regression: mispredicted branches must not permanently block fetch —
/// the machine follows the predicted path and squashes at resolve, so
/// fetched ≥ committed + squashed always holds and progress continues.
#[test]
fn mispredicted_branches_do_not_block_fetch() {
    let mut s = sim(&["mcf"], "ICOUNT", 5);
    s.prewarm(150_000);
    s.run_cycles(60_000);
    let r = s.result();
    assert!(
        r.threads[0].mispredicts > 10,
        "mcf must mispredict sometimes"
    );
    assert!(
        r.threads[0].squashed > 0,
        "squash-at-resolve must discard the continued-fetch stream"
    );
    assert!(r.threads[0].fetched >= r.threads[0].committed + r.threads[0].squashed);
}

/// Regression: `TraceGenerator::decorrelated` must actually change the
/// instruction stream for any non-zero salt — an early version reseeded
/// with the same state and returned a bit-identical clone, which silently
/// defeated the warm-up decorrelation above.
#[test]
fn decorrelated_stream_diverges_from_parent() {
    for bench in ["gzip", "mcf", "swim"] {
        let p = spec::profile(bench).unwrap();
        let parent = TraceGenerator::new(p, 42, 0);
        for salt in [1u64, 2, 77] {
            let mut twin = parent.decorrelated(salt);
            let mut orig = parent.clone();
            let diverged = (0..512).any(|_| orig.next_inst() != twin.next_inst());
            assert!(
                diverged,
                "{bench}: salt {salt} left the stream identical to its parent"
            );
        }
    }
}

/// Regression: `BenchmarkProfile::validate` used to only check the mix
/// *total*, so a negative weight balanced by a larger positive one (or a
/// NaN, which poisons the sampling CDF) slipped through to the generator.
#[test]
fn profile_validation_rejects_out_of_range_mix_weights() {
    let base = spec::profile("gzip").unwrap();
    let mut negative = base.clone();
    negative.mix.load = -0.2;
    negative.mix.int_alu += 0.2; // total still positive
    assert!(
        negative.validate().is_err(),
        "negative load weight must be rejected even when the total is positive"
    );
    let mut nan = base.clone();
    nan.mix.fp_alu = f64::NAN;
    assert!(nan.validate().is_err(), "NaN weight must be rejected");
    let mut inf = base.clone();
    inf.mix.branch = f64::INFINITY;
    assert!(inf.validate().is_err(), "infinite weight must be rejected");
    assert!(base.validate().is_ok(), "baseline stays valid");
}
