//! Determinism and invariant suite for the seeded scenario-family layer.
//!
//! Pins the contract the generator advertises: same seed → bit-identical
//! mixes, manifests and instruction traces; different seeds → divergence;
//! every generated mix satisfies the profile and machine invariants; all
//! nine policies complete full-family sweeps with finite metrics; and each
//! adversarial family actually hurts its target policy relative to the
//! expected family.

use dcra_smt::experiments::scenarios::{
    policy_for_target, specs_for_family, sweep_family, ScenarioLengths,
};
use dcra_smt::experiments::Runner;
use dcra_smt::sim::SimConfig;
use dcra_smt::workloads::{
    FamilyManifest, FamilySpec, PolicyTarget, ScenarioFamily, ScenarioProfile, TraceGenerator,
};
use proptest::prelude::*;

/// The three family shapes under test, at a given mix count.
fn all_specs(mixes: usize) -> Vec<FamilySpec> {
    let mut specs = vec![FamilySpec::expected(mixes), FamilySpec::stress(mixes)];
    specs.extend(PolicyTarget::ALL.map(|t| FamilySpec::adversarial(t, mixes)));
    specs
}

#[test]
fn same_seed_regenerates_bit_identical_traces() {
    for spec in all_specs(4) {
        let a = ScenarioFamily::generate(&spec, 42).unwrap();
        let b = ScenarioFamily::generate(&spec, 42).unwrap();
        assert_eq!(a, b, "{}: family must regenerate identically", spec.name);
        // Beyond parameter equality: the actual instruction streams the
        // simulator would consume must match inst-for-inst.
        for (mix_a, mix_b) in a.mixes().iter().zip(b.mixes()) {
            for (slot, (pa, pb)) in mix_a.profiles.iter().zip(&mix_b.profiles).enumerate() {
                let mut ga = TraceGenerator::new(pa, mix_a.seed, slot as u64);
                let mut gb = TraceGenerator::new(pb, mix_b.seed, slot as u64);
                for n in 0..4096 {
                    assert_eq!(
                        ga.next_inst(),
                        gb.next_inst(),
                        "{}: thread {slot} diverged at instruction {n}",
                        mix_a.id
                    );
                }
            }
        }
    }
}

#[test]
fn same_seed_regenerates_identical_manifest_json() {
    for spec in [
        FamilySpec::expected(8),
        FamilySpec::adversarial(PolicyTarget::Dcra, 8),
    ] {
        let a = FamilyManifest::generate(&spec, 1234).unwrap();
        let b = FamilyManifest::generate(&spec, 1234).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "{}", spec.name);
    }
}

#[test]
fn different_seeds_diverge() {
    for spec in all_specs(4) {
        let a = FamilyManifest::generate(&spec, 1).unwrap();
        let b = FamilyManifest::generate(&spec, 2).unwrap();
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "{}: seed must move the family",
            spec.name
        );
    }
}

#[test]
fn families_produce_at_least_50_distinct_mixes() {
    for spec in [
        FamilySpec::expected(60),
        FamilySpec::stress(60),
        FamilySpec::adversarial(PolicyTarget::Flush, 60),
    ] {
        let manifest = FamilyManifest::generate(&spec, 7).unwrap();
        let mut distinct: Vec<&Vec<u64>> = manifest
            .mixes
            .iter()
            .map(|m| &m.trace_fingerprints)
            .collect();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() >= 50,
            "{}: only {} distinct mixes in 60",
            spec.name,
            distinct.len()
        );
    }
}

proptest! {
    /// Bounds invariants over arbitrary seeds and sizes: every generated
    /// profile validates, dependence distances stay sane, and every mix's
    /// thread count builds a machine config that passes the simulator's
    /// own hard validation.
    #[test]
    fn generated_mixes_respect_invariants(
        seed in 0u64..10_000,
        mixes in 1usize..6,
        which in 0usize..11,
    ) {
        let spec = &all_specs(mixes)[which];
        let family = ScenarioFamily::generate(spec, seed).unwrap();
        prop_assert_eq!(family.mixes().len(), mixes);
        for mix in family.mixes() {
            prop_assert!(
                (spec.min_threads..=spec.max_threads).contains(&mix.threads())
            );
            prop_assert!(SimConfig::baseline(mix.threads()).validate().is_ok());
            for p in &mix.profiles {
                prop_assert!(p.validate().is_ok(), "{}: {}", mix.id, p.name);
                prop_assert!(p.mix.total() > 0.0);
                prop_assert!(p.dep_mean >= 1.0);
                prop_assert!(p.mem.warm_frac + p.mem.cold_frac <= 1.0);
            }
        }
    }
}

#[test]
fn all_nine_policies_sweep_all_families_with_finite_metrics() {
    let runner = Runner::new();
    let lengths = ScenarioLengths {
        prewarm_insts: 40_000,
        warmup_cycles: 3_000,
        measure_cycles: 20_000,
    };
    let expected = ScenarioFamily::generate(&FamilySpec::expected(2), 42).unwrap();
    let stress = ScenarioFamily::generate(&FamilySpec::stress(2), 42).unwrap();
    for target in PolicyTarget::ALL {
        let policy = policy_for_target(target);
        let adversarial =
            ScenarioFamily::generate(&FamilySpec::adversarial(target, 2), 42).unwrap();
        for family in [&expected, &stress, &adversarial] {
            let summary = sweep_family(&runner, family, &policy, lengths);
            assert!(
                summary.all_finite(),
                "{} on {}: non-finite metric",
                policy.name(),
                family.spec().name
            );
            for mix in &summary.mixes {
                assert!(
                    mix.throughput > 0.0,
                    "{} on {}: zero progress",
                    policy.name(),
                    mix.id
                );
            }
        }
    }
}

#[test]
fn adversarial_family_degrades_its_target_policy() {
    // The acceptance claim: a policy's dedicated antagonist family yields
    // measurably lower IPC than the expected family under that same
    // policy. Pinned at 2 threads so the comparison is like-for-like.
    let runner = Runner::new();
    let lengths = ScenarioLengths::smoke();
    let two_threads = |mut spec: FamilySpec| {
        spec.min_threads = 2;
        spec.max_threads = 2;
        spec
    };
    for target in [
        PolicyTarget::Flush,
        PolicyTarget::Icount,
        PolicyTarget::Dcra,
    ] {
        let policy = policy_for_target(target);
        let expected = ScenarioFamily::generate(&two_threads(FamilySpec::expected(3)), 42).unwrap();
        let adversarial =
            ScenarioFamily::generate(&two_threads(FamilySpec::adversarial(target, 3)), 42).unwrap();
        let base = sweep_family(&runner, &expected, &policy, lengths).mean_throughput();
        let adv = sweep_family(&runner, &adversarial, &policy, lengths).mean_throughput();
        assert!(
            adv < base * 0.9,
            "{}: adversarial family ({adv:.3} IPC) must degrade the expected \
             family ({base:.3} IPC) by more than 10%",
            policy.name()
        );
    }
}

#[test]
fn specs_for_family_preserve_mix_order_and_threads() {
    let family = ScenarioFamily::generate(&FamilySpec::stress(5), 3).unwrap();
    let specs = specs_for_family(
        &family,
        &policy_for_target(PolicyTarget::Icount),
        ScenarioLengths::smoke(),
    );
    assert_eq!(specs.len(), 5);
    for (spec, mix) in specs.iter().zip(family.mixes()) {
        assert_eq!(spec.benches.len(), mix.threads());
        assert_eq!(spec.seed, mix.seed);
    }
}

#[test]
fn scenario_profile_tags_are_stable() {
    // Manifest ids and CI paths key off these strings; a rename is a
    // breaking change and must be deliberate.
    assert_eq!(ScenarioProfile::Expected.tag(), "expected");
    assert_eq!(ScenarioProfile::Stress.tag(), "stress");
    assert_eq!(
        ScenarioProfile::Adversarial(PolicyTarget::FlushPlusPlus).tag(),
        "adversarial-FLUSH++"
    );
}
