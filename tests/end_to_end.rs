//! End-to-end integration tests across the whole workspace: build real
//! simulators from the public API, run every policy, and check the
//! paper-level invariants that must hold regardless of calibration.

use dcra_smt::dcra::{Dcra, DcraConfig};
use dcra_smt::experiments::{PolicyKind, RunSpec, Runner};
use dcra_smt::isa::{PerResource, ThreadId};
use dcra_smt::metrics::hmean;
use dcra_smt::sim::{SimConfig, Simulator};
use dcra_smt::workloads::{spec, table4_workloads};

fn short(benches: &[&str], policy: PolicyKind) -> RunSpec {
    let mut s = RunSpec::new(benches, policy);
    s.prewarm_insts = 120_000;
    s.warmup_cycles = 10_000;
    s.measure_cycles = 60_000;
    s
}

#[test]
fn every_policy_kind_builds_and_commits_in_10k_cycles() {
    // Smoke test over the *entire* PolicyKind surface — including the
    // capped-SRA and latency-tuned DCRA variants the longer tests skip:
    // each must build, survive 10k cycles on a 2-thread mix, and commit.
    let kinds = [
        PolicyKind::RoundRobin,
        PolicyKind::Icount,
        PolicyKind::Stall,
        PolicyKind::Flush,
        PolicyKind::FlushPlusPlus,
        PolicyKind::DataGating,
        PolicyKind::PredictiveDataGating,
        PolicyKind::Sra,
        PolicyKind::SraCapped(PerResource::filled(Some(20))),
        PolicyKind::Dcra(DcraConfig::default()),
        PolicyKind::dcra_for_latency(500),
    ];
    let profiles = [
        spec::profile("gzip").unwrap(),
        spec::profile("art").unwrap(),
    ];
    for kind in kinds {
        let mut sim = Simulator::new(SimConfig::baseline(2), &profiles, kind.build(), 7);
        sim.run_cycles(10_000);
        assert!(
            sim.result().total_committed() > 0,
            "{} committed nothing in 10k cycles",
            kind.name()
        );
    }
}

#[test]
fn every_policy_runs_every_thread_count() {
    let runner = Runner::new();
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::Icount,
        PolicyKind::Stall,
        PolicyKind::Flush,
        PolicyKind::FlushPlusPlus,
        PolicyKind::DataGating,
        PolicyKind::PredictiveDataGating,
        PolicyKind::Sra,
        PolicyKind::Dcra(DcraConfig::default()),
    ];
    let workloads = [
        vec!["gzip", "twolf"],
        vec!["gcc", "eon", "gap"],
        vec!["gzip", "twolf", "bzip2", "mcf"],
    ];
    for policy in &policies {
        for wl in &workloads {
            let benches: Vec<&str> = wl.to_vec();
            let out = runner
                .run(&short(&benches, policy.clone()))
                .expect("known bench");
            assert!(
                out.result.total_committed() > 1_000,
                "{} on {benches:?} made no progress",
                policy.name()
            );
            // No thread may commit literally nothing in a healthy run.
            for (i, t) in out.result.threads.iter().enumerate() {
                assert!(
                    t.committed > 0,
                    "{} starved thread {i} of {benches:?}",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn simulation_is_deterministic_across_policy_instances() {
    let runner = Runner::new();
    let spec = short(&["art", "gcc"], PolicyKind::Dcra(DcraConfig::default()));
    let a = runner.run(&spec).expect("known bench");
    let b = runner.run(&spec).expect("known bench");
    assert_eq!(a.result, b.result);
}

#[test]
fn seeds_change_results() {
    let runner = Runner::new();
    let mut s1 = short(&["gzip", "twolf"], PolicyKind::Icount);
    let mut s2 = s1.clone();
    s1.seed = 1;
    s2.seed = 2;
    let a = runner.run(&s1).expect("known bench");
    let b = runner.run(&s2).expect("known bench");
    assert_ne!(
        a.result.total_committed(),
        b.result.total_committed(),
        "different seeds should perturb the run"
    );
}

#[test]
fn throughput_never_exceeds_machine_width() {
    let runner = Runner::new();
    for wl in [
        vec!["gzip", "bzip2"],
        vec!["eon", "crafty", "gzip", "bzip2"],
    ] {
        let benches: Vec<&str> = wl.to_vec();
        let out = runner
            .run(&short(&benches, PolicyKind::Icount))
            .expect("known bench");
        assert!(out.throughput() <= 8.0, "IPC above commit width");
    }
}

#[test]
fn counters_remain_consistent_under_all_policies() {
    for policy in [
        PolicyKind::Icount,
        PolicyKind::Flush,
        PolicyKind::Dcra(DcraConfig::default()),
        PolicyKind::Sra,
    ] {
        let profiles = [
            spec::profile("art").unwrap(),
            spec::profile("mcf").unwrap(),
            spec::profile("gzip").unwrap(),
        ];
        let mut sim = Simulator::new(SimConfig::baseline(3), &profiles, policy.build(), 11);
        for _ in 0..60 {
            sim.run_cycles(500);
            sim.assert_consistent();
        }
    }
}

#[test]
fn flush_policies_refetch_more_than_stall_policies() {
    let runner = Runner::new();
    let wl = ["swim", "mcf"];
    let flush = runner
        .run(&short(&wl, PolicyKind::Flush))
        .expect("known bench");
    let icount = runner
        .run(&short(&wl, PolicyKind::Icount))
        .expect("known bench");
    let flush_rate =
        flush.result.total_fetched() as f64 / flush.result.total_committed().max(1) as f64;
    let icount_rate =
        icount.result.total_fetched() as f64 / icount.result.total_committed().max(1) as f64;
    assert!(
        flush_rate > icount_rate,
        "FLUSH must refetch more per committed instruction ({flush_rate:.2} vs {icount_rate:.2})"
    );
}

#[test]
fn dcra_beats_static_allocation_on_a_mem_workload() {
    // The headline claim at smoke-test scale: on a memory-heavy 2-thread
    // workload, DCRA's Hmean should be at least as good as SRA's.
    let runner = Runner::new();
    let wl = ["art", "vpr"];
    let lengths = short(&wl, PolicyKind::Icount);
    let singles: Vec<f64> = wl
        .iter()
        .map(|b| {
            runner
                .single_ipc(b, &lengths.config, &lengths)
                .expect("known bench")
        })
        .collect();
    let dcra = runner
        .run(&short(&wl, PolicyKind::dcra_for_latency(300)))
        .expect("known bench");
    let sra = runner
        .run(&short(&wl, PolicyKind::Sra))
        .expect("known bench");
    let h_dcra = hmean(&dcra.ipcs(), &singles);
    let h_sra = hmean(&sra.ipcs(), &singles);
    assert!(
        h_dcra > h_sra * 0.97,
        "DCRA hmean {h_dcra:.3} should not trail SRA {h_sra:.3}"
    );
}

#[test]
fn slow_thread_classification_reaches_the_policy() {
    // A pointer-chasing thread must show pending L1 misses (the DCRA slow
    // signal) a substantial fraction of the time.
    let profiles = [
        spec::profile("mcf").unwrap(),
        spec::profile("gzip").unwrap(),
    ];
    let mut sim = Simulator::new(SimConfig::baseline(2), &profiles, Dcra::default(), 3);
    sim.prewarm(120_000);
    sim.run_cycles(10_000);
    let mut slow_cycles = 0;
    let total = 20_000;
    for _ in 0..total {
        sim.step();
        if sim.thread_l1d_pending(ThreadId::new(0)) > 0 {
            slow_cycles += 1;
        }
    }
    assert!(
        slow_cycles > total / 10,
        "mcf slow only {slow_cycles}/{total} cycles"
    );
}

#[test]
fn all_table4_workloads_are_runnable() {
    // Structure check at tiny scale: every workload builds and progresses.
    let runner = Runner::new();
    for w in table4_workloads().iter().step_by(5) {
        let mut s = RunSpec::for_workload(w, PolicyKind::Icount);
        s.prewarm_insts = 20_000;
        s.warmup_cycles = 1_000;
        s.measure_cycles = 10_000;
        let out = runner.run(&s).expect("known bench");
        assert!(out.result.total_committed() > 0, "{w} did not progress");
    }
}

#[test]
fn family_manifests_are_invariant_to_worker_count() {
    // The scenario generator runs under the same parallel work queue as
    // run_all; per-mix seeds derive from (family seed, tag, index) alone,
    // so the emitted manifest must be byte-identical for any worker count.
    use dcra_smt::workloads::{FamilyManifest, FamilySpec, PolicyTarget};
    for spec in [
        FamilySpec::expected(12),
        FamilySpec::stress(12),
        FamilySpec::adversarial(PolicyTarget::Stall, 12),
    ] {
        let reference = FamilyManifest::generate(&spec, 99).unwrap().to_json();
        for workers in [1usize, 2, 3, 8] {
            let json = FamilyManifest::generate_with_workers(&spec, 99, workers)
                .unwrap()
                .to_json();
            assert_eq!(
                json, reference,
                "{}: manifest differs with {workers} workers",
                spec.name
            );
        }
    }
}

#[test]
fn family_sweeps_are_invariant_to_worker_count() {
    // Same property one level up: sweeping a family through the runner's
    // work queue must give identical outcomes for any worker count.
    use dcra_smt::experiments::scenarios::{specs_for_family, ScenarioLengths};
    use dcra_smt::workloads::{FamilySpec, ScenarioFamily};
    let runner = Runner::new();
    let family = ScenarioFamily::generate(&FamilySpec::expected(4), 21).unwrap();
    let specs = specs_for_family(&family, &PolicyKind::Icount, ScenarioLengths::smoke());
    let reference: Vec<_> = runner
        .run_all_with_workers(&specs, 1)
        .into_iter()
        .map(|o| o.into_stats().expect("scenario mixes run clean").result)
        .collect();
    for workers in [2usize, 4] {
        let outcomes: Vec<_> = runner
            .run_all_with_workers(&specs, workers)
            .into_iter()
            .map(|o| o.into_stats().expect("scenario mixes run clean").result)
            .collect();
        assert_eq!(
            outcomes, reference,
            "outcomes differ with {workers} workers"
        );
    }
}
