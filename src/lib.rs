//! **dcra-smt** — a reproduction of *"Dynamically Controlled Resource
//! Allocation in SMT Processors"* (Cazorla, Ramirez, Valero & Fernández,
//! MICRO-37, 2004) as a Rust workspace: a cycle-level SMT simulator, the
//! DCRA allocation policy, every baseline fetch policy the paper compares
//! against, synthetic SPEC2000-like workloads, and experiment drivers that
//! regenerate every table and figure of the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`isa`] — instruction/register/resource vocabulary.
//! * [`bpred`] — gshare + BTB + RAS front end.
//! * [`mem`] — cache hierarchy, MSHRs, TLBs.
//! * [`workloads`] — benchmark profiles, trace generators, Table-4
//!   workloads.
//! * [`policy_core`] — the `Policy` trait and per-cycle machine views.
//! * [`sim`] — the cycle-level SMT pipeline and the statically-dispatched
//!   `AnyPolicy` it runs.
//! * [`policies`] — ICOUNT, STALL, FLUSH, FLUSH++, DG, PDG, SRA.
//! * [`dcra`] — the paper's contribution.
//! * [`metrics`] — IPC throughput, Hmean, MLP, front-end activity.
//! * [`experiments`] — per-figure/table experiment drivers.
//!
//! # Quickstart
//!
//! ```
//! use dcra_smt::dcra::Dcra;
//! use dcra_smt::sim::{SimConfig, Simulator};
//! use dcra_smt::workloads::spec;
//!
//! // Run gzip (high-ILP) and mcf (memory-bound) together under DCRA.
//! let profiles = [spec::profile("gzip").unwrap(), spec::profile("mcf").unwrap()];
//! let mut sim = Simulator::new(
//!     SimConfig::baseline(2),
//!     &profiles,
//!     Dcra::default(), // statically dispatched via AnyPolicy
//!     42,
//! );
//! sim.run_cycles(20_000);
//! let result = sim.result();
//! println!("throughput = {:.2} IPC", result.throughput());
//! assert!(result.total_committed() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcra;
pub use smt_bpred as bpred;
pub use smt_experiments as experiments;
pub use smt_isa as isa;
pub use smt_mem as mem;
pub use smt_metrics as metrics;
pub use smt_policies as policies;
pub use smt_policy_core as policy_core;
pub use smt_sim as sim;
pub use smt_workloads as workloads;
